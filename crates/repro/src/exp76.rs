//! §7.6 — Impact of video ads on user-perceived latency.
//!
//! A pre-roll ad is a second stream played before the main video; the main
//! video prefetches during ad playback. The paper's finding: ads *reduce*
//! the initial loading time of the main video, but on cellular networks the
//! total loading time (ad loading + main loading) roughly doubles.

use crate::scenario::{youtube_world, NetKind};
use device::apps::VideoSpec;
use device::{UiEvent, ViewSignature};
use qoe_doctor::{Controller, WaitCondition};
use simcore::{SimDuration, Summary};
use std::fmt;

/// Results for one (network × ad) configuration.
#[derive(Debug, Clone)]
pub struct AdRun {
    /// Configuration label.
    pub label: String,
    /// With a pre-roll ad?
    pub with_ad: bool,
    /// Whether the controller skipped the ad when offered.
    pub skipped: bool,
    /// Ad initial loading time (zero without an ad).
    pub ad_loading: Summary,
    /// Main-video initial loading time.
    pub main_loading: Summary,
    /// Total loading time (ad + main).
    pub total_loading: Summary,
}

impl fmt::Display for AdRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<5} {:<12} ad-load {:>5.2}s  main-load {:>5.2}s  total-load {:>5.2}s",
            self.label,
            match (self.with_ad, self.skipped) {
                (false, _) => "no-ad",
                (true, true) => "ad (skipped)",
                (true, false) => "ad (watched)",
            },
            self.ad_loading.mean,
            self.main_loading.mean,
            self.total_loading.mean,
        )
    }
}

fn pre_roll() -> VideoSpec {
    VideoSpec {
        name: "ad".into(),
        duration: SimDuration::from_secs(20),
        bitrate_bps: 400e3,
    }
}

/// Watch `reps` videos with/without a pre-roll ad on `net`; when `skip` is
/// set the controller presses "Skip Ad" as soon as it is offered (§4.2.2).
pub fn run_config(net: NetKind, with_ad: bool, skip: bool, reps: usize, seed: u64) -> AdRun {
    let videos: Vec<VideoSpec> = (0..reps)
        .map(|i| VideoSpec {
            name: format!("v{i}"),
            duration: SimDuration::from_secs(45),
            bitrate_bps: 500e3,
        })
        .collect();
    let ad = with_ad.then(pre_roll);
    let world = youtube_world(videos.clone(), ad, net, seed, true);
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(5));
    doctor.interact(&UiEvent::TypeText {
        target: ViewSignature::by_id("search_box"),
        text: String::new(),
    });
    doctor.interact(&UiEvent::KeyEnter);
    doctor.advance(SimDuration::from_secs(10));

    let mut ad_loads = Vec::new();
    let mut main_loads = Vec::new();
    let mut totals = Vec::new();
    for spec in &videos {
        let click = UiEvent::Click {
            target: ViewSignature::by_id(&format!("result_{}", spec.name)),
        };
        if with_ad {
            // First window: ad loading (click → progress hidden while the
            // ad buffers).
            let ad_m = doctor.measure_after(
                "ad:initial_loading",
                &click,
                &WaitCondition::Hidden {
                    id: "player_progress".into(),
                },
                SimDuration::from_secs(120),
            );
            if skip {
                // The paper's controller skips ads whenever offered
                // (§4.2.2); the skip button appears 5 s into ad playback.
                doctor.advance(SimDuration::from_secs(6));
                doctor.interact(&UiEvent::Click {
                    target: ViewSignature::by_id("skip_ad"),
                });
            }
            // Second window: main-video loading after the (skipped) ad. The
            // prefetched buffer may make this nearly instantaneous; a
            // missed (sub-parse-interval) window counts as zero.
            let main_m = doctor.measure_span(
                "video:initial_loading",
                &WaitCondition::Shown {
                    id: "player_progress".into(),
                },
                &WaitCondition::Hidden {
                    id: "player_progress".into(),
                },
                pre_roll().duration + SimDuration::from_secs(90),
            );
            let ad_load = ad_m.record.calibrated().as_secs_f64();
            let main_load = main_m
                .as_ref()
                .map(|m| m.record.calibrated().as_secs_f64())
                .unwrap_or(0.0);
            ad_loads.push(ad_load);
            main_loads.push(main_load);
            totals.push(ad_load + main_load);
        } else {
            let m = doctor.measure_after(
                "video:initial_loading",
                &click,
                &WaitCondition::Hidden {
                    id: "player_progress".into(),
                },
                SimDuration::from_secs(120),
            );
            let load = m.record.calibrated().as_secs_f64();
            ad_loads.push(0.0);
            main_loads.push(load);
            totals.push(load);
        }
        // Let the video finish before the next rep.
        let drain = doctor.monitor_playback(
            "video",
            SimDuration::from_secs(45 * 3 + 60) + pre_roll().duration * 2,
        );
        let _ = drain;
        doctor.advance(SimDuration::from_secs(3));
    }
    AdRun {
        label: net.label(),
        with_ad,
        skipped: with_ad && skip,
        ad_loading: Summary::of(&ad_loads),
        main_loading: Summary::of(&main_loads),
        total_loading: Summary::of(&totals),
    }
}

/// The §7.6 matrix as a campaign: one job per (network × ad mode).
pub fn campaign(reps: usize, seed: u64) -> harness::Campaign<AdRun> {
    let mut c = harness::Campaign::new("exp76");
    for net in [NetKind::Wifi, NetKind::Lte, NetKind::Umts3g] {
        for (mode, with_ad, skip) in [
            ("no-ad", false, false),
            ("ad-skipped", true, true),
            ("ad-watched", true, false),
        ] {
            c.job(format!("{}/{mode}", net.label()), seed, move || {
                run_config(net, with_ad, skip, reps, seed)
            });
        }
    }
    c
}

/// Run the §7.6 matrix: WiFi / LTE / 3G × {no ad, skipped ad, watched ad}.
pub fn run(reps: usize, seed: u64) -> Vec<AdRun> {
    campaign(reps, seed).run(1).into_outputs()
}
