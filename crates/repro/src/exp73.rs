//! §7.3 — Facebook background traffic: data and energy (Figs. 10–13).
//!
//! Device B runs Facebook in the background on C1 3G for 16 hours. "Device
//! A" (the friend) is simulated by the push origin posting on a schedule;
//! time-sensitive notifications arrive over the persistent push channel,
//! while the periodic *refresh interval* fetch pulls non-time-sensitive
//! recommendation content. Data consumption comes from flow analysis over
//! the capture; network energy from RRC residencies against the power model.

use crate::scenario::{facebook_world, NetKind, PUSH_BYTES};
use device::apps::FbVersion;
use qoe_doctor::analyze::radio::{energy_breakdown, residencies};
use qoe_doctor::analyze::transport::TransportReport;
use qoe_doctor::{Collection, Controller};
use radio::power::PowerModel;
use radio::rrc::RrcState;
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Duration of each background run at full scale (the paper's 16 h).
/// `--quick` runs pass a shorter duration through [`run_config`].
pub const RUN_HOURS: u64 = 16;

/// One bar of Figs. 10–13.
#[derive(Debug, Clone)]
pub struct BackgroundRow {
    /// Configuration label (push interval or refresh interval).
    pub label: String,
    /// Uplink kilobytes over the run.
    pub ul_kb: f64,
    /// Downlink kilobytes over the run.
    pub dl_kb: f64,
    /// Non-tail network energy (J).
    pub non_tail_j: f64,
    /// Tail network energy (J).
    pub tail_j: f64,
}

impl BackgroundRow {
    /// Total data in KB.
    pub fn total_kb(&self) -> f64 {
        self.ul_kb + self.dl_kb
    }

    /// Total energy in J.
    pub fn total_j(&self) -> f64 {
        self.non_tail_j + self.tail_j
    }
}

impl fmt::Display for BackgroundRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} data {:>7.0} KB (ul {:>6.0} / dl {:>6.0})   energy {:>6.0} J (non-tail {:>5.0} / tail {:>5.0})",
            self.label,
            self.total_kb(),
            self.ul_kb,
            self.dl_kb,
            self.total_j(),
            self.non_tail_j,
            self.tail_j
        )
    }
}

/// Run one background configuration for `hours` simulated hours (the
/// paper's experiment uses [`RUN_HOURS`]) and compute its row.
pub fn run_config(
    label: &str,
    push_interval: Option<SimDuration>,
    refresh_interval: Option<SimDuration>,
    hours: u64,
    seed: u64,
) -> BackgroundRow {
    background_row(
        &session(push_interval, refresh_interval, hours, seed),
        label,
    )
}

/// Record one background configuration for `hours` simulated hours.
fn session(
    push_interval: Option<SimDuration>,
    refresh_interval: Option<SimDuration>,
    hours: u64,
    seed: u64,
) -> Collection {
    // Backgrounded app: pushes are received but do not drive the visible UI
    // (auto-update on push belongs to the foreground §7.4 scenario).
    let world = facebook_world(
        FbVersion::ListView50,
        refresh_interval,
        false,
        push_interval,
        PUSH_BYTES,
        NetKind::Umts3g,
        seed,
        true, // per-PDU QxDM logging off; RRC transitions still recorded
    );
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_hours(hours));
    doctor.collect()
}

/// Compute one Figs. 10–13 row from a recorded background session.
fn background_row(col: &Collection, label: &str) -> BackgroundRow {
    // Mobile data: all traffic to Facebook domains.
    let report = TransportReport::analyze(&col.trace);
    let (ul, dl) = report.volume_to("facebook");

    // Network energy from RRC residencies; data-activity timestamps come
    // from the packet capture.
    let qxdm = col.qxdm.as_ref().expect("cellular run");
    let res = residencies(qxdm, RrcState::Pch, SimTime::ZERO, col.end);
    let activity: Vec<SimTime> = col.trace.iter().map(|(at, _)| at).collect();
    let energy = energy_breakdown(&res, &activity, &PowerModel::default());

    BackgroundRow {
        label: label.to_string(),
        ul_kb: ul as f64 / 1e3,
        dl_kb: dl as f64 / 1e3,
        non_tail_j: energy.non_tail_j,
        tail_j: energy.tail_j,
    }
}

/// Figs. 10 and 11 as a two-stage campaign: sweep the friend's post-upload
/// frequency with the default 1 h refresh interval.
pub fn staged_fig10_11(
    hours: u64,
    seed: u64,
) -> harness::StagedCampaign<Collection, BackgroundRow> {
    let hour = SimDuration::from_hours(1);
    let mut c = harness::StagedCampaign::new("fig10_11");
    for (label, push) in [
        ("10 min", Some(SimDuration::from_mins(10))),
        ("30 min", Some(SimDuration::from_mins(30))),
        ("1 hr", Some(hour)),
        ("none", None),
    ] {
        c.timed_job(
            format!("push={label}"),
            seed,
            (hours * 3600) as f64,
            crate::stage::config_digest("fig10_11", &format!("push={label}"), &[hours]),
            move || session(push, Some(hour), hours, seed),
            move |col: &Collection| background_row(col, label),
        );
    }
    c
}

/// Figs. 10 and 11 as a plain (fused record+analyze) campaign.
pub fn campaign_fig10_11(hours: u64, seed: u64) -> harness::Campaign<BackgroundRow> {
    staged_fig10_11(hours, seed).into_campaign(&harness::StageMode::Inline)
}

/// Figs. 12 and 13 as a two-stage campaign: sweep the refresh-interval
/// setting with the friend posting every 30 minutes.
pub fn staged_fig12_13(
    hours: u64,
    seed: u64,
) -> harness::StagedCampaign<Collection, BackgroundRow> {
    let push = Some(SimDuration::from_mins(30));
    let mut c = harness::StagedCampaign::new("fig12_13");
    for (label, refresh) in [
        ("30 min", SimDuration::from_mins(30)),
        ("1 hr", SimDuration::from_hours(1)),
        ("2 hr", SimDuration::from_hours(2)),
        ("4 hr", SimDuration::from_hours(4)),
    ] {
        c.timed_job(
            format!("refresh={label}"),
            seed,
            (hours * 3600) as f64,
            crate::stage::config_digest("fig12_13", &format!("refresh={label}"), &[hours]),
            move || session(push, Some(refresh), hours, seed),
            move |col: &Collection| background_row(col, label),
        );
    }
    c
}

/// Figs. 12 and 13 as a plain (fused record+analyze) campaign.
pub fn campaign_fig12_13(hours: u64, seed: u64) -> harness::Campaign<BackgroundRow> {
    staged_fig12_13(hours, seed).into_campaign(&harness::StageMode::Inline)
}

/// Figs. 10 and 11 rows, computed serially.
pub fn run_fig10_11(hours: u64, seed: u64) -> Vec<BackgroundRow> {
    campaign_fig10_11(hours, seed).run(1).into_outputs()
}

/// Figs. 12 and 13 rows, computed serially.
pub fn run_fig12_13(hours: u64, seed: u64) -> Vec<BackgroundRow> {
    campaign_fig12_13(hours, seed).run(1).into_outputs()
}
