//! CLI helpers: the experiment index (`repro list`) and experiment-name
//! matching for friendlier usage errors.

/// Every experiment id the binary accepts (including aliases), with a
/// one-line description. This is the single source of truth for both
/// `repro list` and the closest-match suggestion on typos.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Replayed behaviours and latency anchors"),
    ("table2", "Experiment goals"),
    ("table3", "Tool accuracy and overhead (§7.1)"),
    ("fig6", "Alias of table3: accuracy and overhead (§7.1)"),
    ("fig7", "Post uploading: device vs network delay (§7.2)"),
    (
        "fig8",
        "Fine-grained network latency of a 2-photo post (§7.2)",
    ),
    ("fig10", "Background data vs post frequency (§7.3)"),
    ("fig11", "Background energy vs post frequency (§7.3)"),
    ("fig12", "Background data vs refresh interval (§7.3)"),
    ("fig13", "Background energy vs refresh interval (§7.3)"),
    (
        "fig14",
        "News feed update latency, WebView vs ListView (§7.4)",
    ),
    ("fig15", "Feed update device/network breakdown (§7.4)"),
    ("fig16", "Network data per feed update (§7.4)"),
    ("fig17", "Throttled vs unthrottled video QoE (§7.5)"),
    ("fig18", "Shaping vs policing throughput signature (§7.5)"),
    ("fig19", "Rebuffering vs throttled bandwidth sweep (§7.5)"),
    (
        "fig20",
        "Initial loading vs throttled bandwidth sweep (§7.5)",
    ),
    ("exp76", "Video ads and loading time (§7.6)"),
    ("exp77", "RRC state machine design and page loads (§7.7)"),
    (
        "ablation",
        "Mapper, calibration and throttle-discipline ablations",
    ),
    ("chaos", "Fault injection: QoE deltas + layer attribution"),
    (
        "monitor",
        "Longitudinal monitoring: epoch regressions + layer attribution",
    ),
    ("bench", "Hot-path performance snapshot (BENCH JSON)"),
    ("list", "Print this experiment index"),
    ("all", "Every experiment above at the requested scale"),
];

/// Print the experiment index, one `id  description` line per entry.
pub fn print_list() {
    for (name, desc) in EXPERIMENTS {
        println!("{name:<10} {desc}");
    }
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // One rolling row of the DP matrix.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev_diag + usize::from(ca != cb);
            prev_diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[b.len()]
}

/// The closest experiment id to `input`, if any is close enough to be a
/// plausible typo (distance at most 2, and strictly less than the length
/// of the input so that arbitrary short strings don't match).
pub fn closest_experiment(input: &str) -> Option<&'static str> {
    EXPERIMENTS
        .iter()
        .map(|(c, _)| (edit_distance(input, c), *c))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 2 && *d < input.chars().count())
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("fig17", "fig17"), 0);
        assert_eq!(edit_distance("fig17", "fig7"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn suggests_plausible_typos_only() {
        assert_eq!(closest_experiment("fig71"), Some("fig7"));
        assert_eq!(closest_experiment("tabel3"), Some("table3"));
        assert_eq!(closest_experiment("ablatoin"), Some("ablation"));
        assert_eq!(closest_experiment("chaoss"), Some("chaos"));
        assert_eq!(closest_experiment("monitr"), Some("monitor"));
        // Nothing resembles this; no suggestion.
        assert_eq!(closest_experiment("zzzzzzzzz"), None);
        // Exact ids are obviously their own closest match.
        assert_eq!(closest_experiment("fig17"), Some("fig17"));
    }

    #[test]
    fn index_has_descriptions_for_every_id() {
        for (name, desc) in EXPERIMENTS {
            assert!(!name.is_empty() && !desc.is_empty());
        }
        // Ids are unique.
        let mut names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXPERIMENTS.len());
    }
}
