//! CLI helpers: experiment-name matching for friendlier usage errors.

/// Every experiment id the binary accepts (including aliases).
pub const EXPERIMENTS: &[&str] = &[
    "table1", "table2", "table3", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "exp76", "exp77", "ablation",
    "chaos", "bench", "all",
];

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // One rolling row of the DP matrix.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev_diag + usize::from(ca != cb);
            prev_diag = row[j + 1];
            row[j + 1] = sub.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[b.len()]
}

/// The closest experiment id to `input`, if any is close enough to be a
/// plausible typo (distance at most 2, and strictly less than the length
/// of the input so that arbitrary short strings don't match).
pub fn closest_experiment(input: &str) -> Option<&'static str> {
    EXPERIMENTS
        .iter()
        .map(|c| (edit_distance(input, c), *c))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 2 && *d < input.chars().count())
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("fig17", "fig17"), 0);
        assert_eq!(edit_distance("fig17", "fig7"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn suggests_plausible_typos_only() {
        assert_eq!(closest_experiment("fig71"), Some("fig7"));
        assert_eq!(closest_experiment("tabel3"), Some("table3"));
        assert_eq!(closest_experiment("ablatoin"), Some("ablation"));
        assert_eq!(closest_experiment("chaoss"), Some("chaos"));
        // Nothing resembles this; no suggestion.
        assert_eq!(closest_experiment("zzzzzzzzz"), None);
        // Exact ids are obviously their own closest match.
        assert_eq!(closest_experiment("fig17"), Some("fig17"));
    }
}
