//! §7.5 — Carrier throttling and YouTube QoE (Figs. 17–20).
//!
//! C1 throttles post-cap traffic instead of charging overages: 3G throttles
//! by token-bucket *shaping*, LTE by token-bucket *policing* (Finding 7).
//! We replay video watching over throttled and unthrottled bearers and
//! measure the initial loading time and rebuffering ratio from the player's
//! progress bar (Fig. 17), record the throughput signature of each
//! discipline (Fig. 18), and sweep the throttle rate (Figs. 19–20).

use crate::scenario::{video_dataset, youtube_world, NetKind};
use device::apps::VideoSpec;
use device::{UiEvent, ViewSignature};
use qoe_doctor::analyze::app::playback_reports;
use qoe_doctor::analyze::transport::{downlink_throughput, TransportReport};
use qoe_doctor::{Collection, Controller, WaitCondition};
use simcore::{Cdf, DetRng, SimDuration};
use std::fmt;

/// The post-cap throttle rate C1 applies (Fig. 17).
pub const CAP_RATE: f64 = 128e3;

/// Per-video measurements.
#[derive(Debug, Clone)]
pub struct VideoQoe {
    /// Video name.
    pub name: String,
    /// Calibrated initial loading time (seconds).
    pub initial_loading: f64,
    /// Rebuffering ratio after initial loading.
    pub rebuffering: f64,
    /// Whether playback finished within the watch timeout.
    pub finished: bool,
}

/// One configuration's results.
#[derive(Debug, Clone)]
pub struct WatchRun {
    /// Configuration label.
    pub label: String,
    /// Per-video results.
    pub videos: Vec<VideoQoe>,
}

impl WatchRun {
    /// CDF of initial loading times.
    pub fn loading_cdf(&self) -> Cdf {
        Cdf::of(
            &self
                .videos
                .iter()
                .map(|v| v.initial_loading)
                .collect::<Vec<_>>(),
        )
    }

    /// CDF of rebuffering ratios.
    pub fn rebuffer_cdf(&self) -> Cdf {
        Cdf::of(
            &self
                .videos
                .iter()
                .map(|v| v.rebuffering)
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for WatchRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let load = self.loading_cdf();
        let rebuf = self.rebuffer_cdf();
        write!(
            f,
            "{:<22} n={:<3} loading p50 {:>6.1}s p90 {:>6.1}s | rebuffer p50 {:>5.2} p90 {:>5.2}",
            self.label,
            self.videos.len(),
            load.quantile(0.5),
            load.quantile(0.9),
            rebuf.quantile(0.5),
            rebuf.quantile(0.9),
        )
    }
}

/// Watch `count` randomly-chosen dataset videos on `net`.
pub fn run_watch(net: NetKind, count: usize, seed: u64) -> WatchRun {
    watch_run_from(&watch_session(net, count, seed), net.label(), count)
}

/// The pinned random video subset each watch session plays, independent of
/// the run seed so every configuration (and every sweep point) watches the
/// same videos. Both the record stage (to drive the UI) and the analyze
/// stage (to name the videos) recompute this.
fn picks(count: usize) -> Vec<VideoSpec> {
    let dataset = video_dataset(11);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = DetRng::seed_from_u64(777);
    rng.shuffle(&mut order);
    order[..count.min(order.len())]
        .iter()
        .map(|i| dataset[*i].clone())
        .collect()
}

/// Record a watch session: play each picked video to the end (or timeout).
fn watch_session(net: NetKind, count: usize, seed: u64) -> Collection {
    let picks = picks(count);
    let world = youtube_world(video_dataset(11), None, net, seed ^ 0xBEE, true);
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(5));
    // One search populates the results list for the whole session.
    doctor.interact(&UiEvent::TypeText {
        target: ViewSignature::by_id("search_box"),
        text: String::new(),
    });
    doctor.interact(&UiEvent::KeyEnter);
    doctor.advance(SimDuration::from_secs(10));

    for spec in &picks {
        let m = doctor.measure_after(
            "video:initial_loading",
            &UiEvent::Click {
                target: ViewSignature::by_id(&format!("result_{}", spec.name)),
            },
            &WaitCondition::Hidden {
                id: "player_progress".into(),
            },
            SimDuration::from_secs(240),
        );
        if m.record.timed_out {
            continue;
        }
        // Watch to the end, recording stalls. Generous budget: a throttled
        // link needs total_bytes / throttle_rate to drain.
        let budget = spec.duration * 2
            + SimDuration::from_secs_f64(spec.total_bytes() as f64 * 8.0 / 64e3)
            + SimDuration::from_secs(60);
        doctor.monitor_playback("video", budget);
        doctor.advance(SimDuration::from_secs(3));
    }
    doctor.collect()
}

/// Rebuild a [`WatchRun`] from a recorded session: the i-th
/// `video:initial_loading` record belongs to the i-th pick, and each
/// non-timed-out video contributed exactly one playback summary record.
fn watch_run_from(col: &Collection, label: String, count: usize) -> WatchRun {
    let picks = picks(count);
    let loading: Vec<_> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "video:initial_loading")
        .map(|(_, r)| r)
        .collect();
    let reports = playback_reports(&col.behavior, "video");
    let mut report_iter = reports.iter();
    let mut videos = Vec::new();
    for (spec, rec) in picks.iter().zip(loading.iter()) {
        if rec.timed_out {
            videos.push(VideoQoe {
                name: spec.name.clone(),
                initial_loading: rec.calibrated().as_secs_f64(),
                rebuffering: 1.0,
                finished: false,
            });
            continue;
        }
        let report = report_iter
            .next()
            .expect("one playback report per non-timed-out video");
        videos.push(VideoQoe {
            name: spec.name.clone(),
            initial_loading: rec.calibrated().as_secs_f64(),
            rebuffering: report.rebuffering_ratio(),
            finished: report.finished,
        });
    }
    WatchRun { label, videos }
}

/// Fig. 17 as a two-stage campaign: one job per bearer configuration.
pub fn staged_fig17(count: usize, seed: u64) -> harness::StagedCampaign<Collection, WatchRun> {
    let mut c = harness::StagedCampaign::new("fig17");
    for net in [
        NetKind::Umts3g,
        NetKind::Lte,
        NetKind::Umts3gThrottled(CAP_RATE),
        NetKind::LteThrottled(CAP_RATE),
    ] {
        let label = net.label();
        let cfg = crate::stage::config_digest("fig17", &label, &[count as u64]);
        c.job(
            label,
            seed,
            cfg,
            move || watch_session(net, count, seed),
            move |col: &Collection| watch_run_from(col, net.label(), count),
        );
    }
    c
}

/// Fig. 17 as a plain (fused record+analyze) campaign.
pub fn campaign_fig17(count: usize, seed: u64) -> harness::Campaign<WatchRun> {
    staged_fig17(count, seed).into_campaign(&harness::StageMode::Inline)
}

/// Fig. 17: throttled vs unthrottled on both technologies.
pub fn run_fig17(count: usize, seed: u64) -> Vec<WatchRun> {
    campaign_fig17(count, seed).run(1).into_outputs()
}

/// One Fig. 18 trace: per-second downlink throughput plus TCP health.
#[derive(Debug, Clone)]
pub struct ThroughputTrace {
    /// Configuration label.
    pub label: String,
    /// Per-second throughput samples (bits/s).
    pub series: Vec<f64>,
    /// Mean throughput (bits/s).
    pub mean_bps: f64,
    /// Standard deviation of per-second throughput.
    pub std_bps: f64,
    /// TCP retransmissions observed in the trace.
    pub retransmissions: u32,
}

impl fmt::Display for ThroughputTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} mean {:>6.3} Mb/s  sd {:>6.3} Mb/s  retx {:>4}",
            self.label,
            self.mean_bps / 1e6,
            self.std_bps / 1e6,
            self.retransmissions
        )
    }
}

/// Fig. 18: stream one long video through one throttle discipline.
fn trace_session(net: NetKind, seed: u64) -> Collection {
    let spec = VideoSpec {
        name: "trace".into(),
        duration: SimDuration::from_secs(280),
        bitrate_bps: 420e3,
    };
    let world = youtube_world(vec![spec], None, net, seed, true);
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(5));
    doctor.interact(&UiEvent::TypeText {
        target: ViewSignature::by_id("search_box"),
        text: String::new(),
    });
    doctor.interact(&UiEvent::KeyEnter);
    doctor.advance(SimDuration::from_secs(5));
    doctor.interact(&UiEvent::Click {
        target: ViewSignature::by_id("result_trace"),
    });
    doctor.advance(SimDuration::from_secs(300));
    doctor.collect()
}

/// Compute the downlink throughput profile of a recorded Fig. 18 session.
fn throughput_trace(col: &Collection, label: String) -> ThroughputTrace {
    let series = downlink_throughput(&col.trace, 1.0);
    let report = TransportReport::analyze(&col.trace);
    ThroughputTrace {
        label,
        series: series.bins.clone(),
        mean_bps: series.mean(),
        std_bps: series.std_dev(),
        retransmissions: report.total_retx(),
    }
}

/// Fig. 18 as a two-stage campaign: one job per throttle discipline.
pub fn staged_fig18(seed: u64) -> harness::StagedCampaign<Collection, ThroughputTrace> {
    let mut c = harness::StagedCampaign::new("fig18");
    for net in [
        NetKind::Umts3gThrottled(CAP_RATE),
        NetKind::LteThrottled(CAP_RATE),
    ] {
        let label = net.label();
        let cfg = crate::stage::config_digest("fig18", &label, &[]);
        c.timed_job(
            label,
            seed,
            315.0,
            cfg,
            move || trace_session(net, seed),
            move |col: &Collection| throughput_trace(col, net.label()),
        );
    }
    c
}

/// Fig. 18 as a plain (fused record+analyze) campaign.
pub fn campaign_fig18(seed: u64) -> harness::Campaign<ThroughputTrace> {
    staged_fig18(seed).into_campaign(&harness::StageMode::Inline)
}

/// Fig. 18: the throughput signature of shaping vs policing.
pub fn run_fig18(seed: u64) -> Vec<ThroughputTrace> {
    campaign_fig18(seed).run(1).into_outputs()
}

/// One Figs. 19/20 sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Throttle rate (bits/s).
    pub rate_bps: f64,
    /// Technology label.
    pub label: String,
    /// Mean rebuffering ratio.
    pub rebuffering: f64,
    /// Mean initial loading time (seconds).
    pub initial_loading: f64,
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<4} @ {:>3.0} kb/s  rebuffer {:>5.2}  loading {:>6.1}s",
            self.label,
            self.rate_bps / 1e3,
            self.rebuffering,
            self.initial_loading
        )
    }
}

/// Figs. 19/20 as a two-stage campaign: one job per (rate × technology)
/// sweep point.
pub fn staged_sweep(
    videos_per_point: usize,
    seed: u64,
) -> harness::StagedCampaign<Collection, SweepPoint> {
    let mut c = harness::StagedCampaign::new("fig19_20");
    for rate in [100e3, 200e3, 300e3, 400e3, 500e3] {
        for (label, net) in [
            ("3G", NetKind::Umts3gThrottled(rate)),
            ("LTE", NetKind::LteThrottled(rate)),
        ] {
            let job_seed = seed ^ rate as u64;
            let job_label = format!("{label}@{}kbps", rate / 1e3);
            let cfg = crate::stage::config_digest_rate(
                "fig19_20",
                &job_label,
                &[videos_per_point as u64],
                rate,
            );
            c.job(
                job_label,
                job_seed,
                cfg,
                move || watch_session(net, videos_per_point, job_seed),
                move |col: &Collection| {
                    let run = watch_run_from(col, net.label(), videos_per_point);
                    let n = run.videos.len().max(1) as f64;
                    SweepPoint {
                        rate_bps: rate,
                        label: label.into(),
                        rebuffering: run.videos.iter().map(|v| v.rebuffering).sum::<f64>() / n,
                        initial_loading: run.videos.iter().map(|v| v.initial_loading).sum::<f64>()
                            / n,
                    }
                },
            );
        }
    }
    c
}

/// Figs. 19/20 as a plain (fused record+analyze) campaign.
pub fn campaign_sweep(videos_per_point: usize, seed: u64) -> harness::Campaign<SweepPoint> {
    staged_sweep(videos_per_point, seed).into_campaign(&harness::StageMode::Inline)
}

/// Figs. 19/20: sweep the throttled bandwidth on both technologies.
pub fn run_sweep(videos_per_point: usize, seed: u64) -> Vec<SweepPoint> {
    campaign_sweep(videos_per_point, seed).run(1).into_outputs()
}
