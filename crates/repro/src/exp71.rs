//! §7.1 — Tool accuracy and overhead (Table 3 and Fig. 6).
//!
//! Each of the five user-perceived latency metrics is replayed repeatedly;
//! the calibrated measurement is compared against the on-screen ground
//! truth (the paper's 60 fps camera; here the simulator's draw log). The
//! section also reports the IP→RLC mapping ratios of §5.4.2 and the
//! controller's CPU overhead.

use crate::exp72::{run_posts, PostKind};
use crate::scenario::{browser_world, facebook_world, youtube_world, NetKind};
use device::apps::{BrowserConfig, FbVersion, VideoSpec};
use device::{UiEvent, ViewSignature};
use netstack::pcap::Direction;
use netstack::IpPacket;
use qoe_doctor::analyze::app::{accuracy_span, accuracy_trigger, AccuracySample};
use qoe_doctor::analyze::crosslayer::{long_jump_map, score_mapping, MappingScore};
use qoe_doctor::{Collection, Controller, WaitCondition};
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Accuracy for one latency metric (one Fig. 6 bar).
#[derive(Debug, Clone)]
pub struct MetricAccuracy {
    /// Metric name.
    pub metric: &'static str,
    /// Number of comparable measurements.
    pub n: usize,
    /// Mean |measured − truth| in milliseconds.
    pub mean_error_ms: f64,
    /// Maximum |measured − truth| in milliseconds (Table 3's `t_d`).
    pub max_error_ms: f64,
    /// Upper bound of the error ratio, computed as the paper does: the
    /// mean error `t_d` over the *shortest* ground-truth latency observed.
    pub max_ratio_percent: f64,
}

impl fmt::Display for MetricAccuracy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<26} n={:<3} mean err {:>5.1} ms  max err {:>5.1} ms  ratio <= {:>4.2}%",
            self.metric, self.n, self.mean_error_ms, self.max_error_ms, self.max_ratio_percent
        )
    }
}

fn summarize(metric: &'static str, samples: &[AccuracySample]) -> MetricAccuracy {
    let n = samples.len();
    if n == 0 {
        return MetricAccuracy {
            metric,
            n,
            mean_error_ms: 0.0,
            max_error_ms: 0.0,
            max_ratio_percent: 0.0,
        };
    }
    let errors: Vec<f64> = samples
        .iter()
        .map(|s| s.error.as_secs_f64() * 1e3)
        .collect();
    let mean = errors.iter().sum::<f64>() / n as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    let min_truth = samples
        .iter()
        .map(|s| s.truth.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    MetricAccuracy {
        metric,
        n,
        mean_error_ms: mean,
        max_error_ms: max,
        // §7.1: "the average time difference t_d … the ratio of t_d to
        // t_screen … we use the shortest t_screen among all experiments".
        max_ratio_percent: if min_truth > 0.0 {
            mean / (min_truth * 1e3) * 100.0
        } else {
            0.0
        },
    }
}

/// Record the status-post accuracy session: status posts on LTE with the
/// screen ground truth enabled.
fn posts_session(reps: usize, seed: u64) -> Collection {
    let world = facebook_world(
        FbVersion::ListView50,
        None,
        false,
        None,
        crate::scenario::PUSH_BYTES,
        NetKind::Lte,
        seed,
        true,
    );
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(10));
    for rep in 0..reps {
        let text = format!("status: accuracy ts#{rep}");
        doctor.interact(&UiEvent::TypeText {
            target: ViewSignature::by_id("composer"),
            text: text.clone(),
        });
        doctor.measure_after(
            "upload_post:status",
            &UiEvent::Click {
                target: ViewSignature::by_id("post_button"),
            },
            &WaitCondition::TextAppears {
                container: "news_feed".into(),
                needle: text,
            },
            SimDuration::from_secs(60),
        );
        doctor.advance(SimDuration::from_secs(2));
    }
    doctor.collect()
}

/// Facebook post-update accuracy from a recorded session. The rep index of
/// each `upload_post:status` record (they log in replay order) rebuilds the
/// camera label the live controller knew.
fn posts_accuracy_from(col: &Collection) -> MetricAccuracy {
    let samples: Vec<AccuracySample> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "upload_post:status")
        .enumerate()
        .filter_map(|(rep, (_, rec))| {
            let label = format!("news_feed:item:status: accuracy ts#{rep}");
            accuracy_trigger(rec, &col.camera, &label)
        })
        .collect();
    summarize("Facebook post updates", &samples)
}

/// Record the pull-to-update accuracy session (span metric).
fn pull_session(reps: usize, seed: u64) -> Collection {
    let world = facebook_world(
        FbVersion::ListView50,
        None,
        true,
        Some(SimDuration::from_secs(30)),
        2_400,
        NetKind::Lte,
        seed,
        true,
    );
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(5));
    for _ in 0..reps {
        doctor.measure_span(
            "pull_to_update",
            &WaitCondition::Shown {
                id: "feed_progress".into(),
            },
            &WaitCondition::Hidden {
                id: "feed_progress".into(),
            },
            SimDuration::from_secs(60),
        );
    }
    doctor.collect()
}

/// Pull-to-update accuracy from a recorded session. `measure_span` logs
/// exactly the records it returns, so filtering the behaviour log by action
/// rebuilds the live record list.
fn pull_accuracy_from(col: &Collection) -> MetricAccuracy {
    let samples: Vec<AccuracySample> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "pull_to_update")
        .filter_map(|(_, rec)| {
            accuracy_span(rec, &col.camera, "feed_progress:show", "feed_progress:hide")
        })
        .collect();
    summarize("Facebook pull-to-update", &samples)
}

/// Record the YouTube initial-loading + rebuffering accuracy session.
fn video_session(reps: usize, seed: u64) -> Collection {
    // Throttled 3G induces rebuffering events for the span metric.
    let videos: Vec<VideoSpec> = (0..reps)
        .map(|i| VideoSpec {
            name: format!("v{i}"),
            duration: SimDuration::from_secs(30),
            bitrate_bps: 400e3,
        })
        .collect();
    let world = youtube_world(
        videos.clone(),
        None,
        NetKind::Umts3gThrottled(200e3),
        seed,
        true,
    );
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(5));
    doctor.interact(&UiEvent::TypeText {
        target: ViewSignature::by_id("search_box"),
        text: String::new(),
    });
    doctor.interact(&UiEvent::KeyEnter);
    doctor.advance(SimDuration::from_secs(10));
    for spec in &videos {
        doctor.measure_after(
            "video:initial_loading",
            &UiEvent::Click {
                target: ViewSignature::by_id(&format!("result_{}", spec.name)),
            },
            &WaitCondition::Hidden {
                id: "player_progress".into(),
            },
            SimDuration::from_secs(200),
        );
        doctor.monitor_playback("video", SimDuration::from_secs(200));
        doctor.advance(SimDuration::from_secs(3));
    }
    doctor.collect()
}

/// YouTube initial loading + rebuffering accuracy from a recorded session.
fn video_accuracy_from(col: &Collection) -> (MetricAccuracy, MetricAccuracy) {
    let loading: Vec<AccuracySample> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "video:initial_loading" && !r.timed_out)
        .filter_map(|(_, rec)| accuracy_trigger(rec, &col.camera, "player_progress:hide"))
        .collect();
    let rebuffer: Vec<AccuracySample> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "video:rebuffer" && !r.timed_out)
        .filter_map(|(_, r)| {
            accuracy_span(
                r,
                &col.camera,
                "player_progress:show",
                "player_progress:hide",
            )
        })
        // Exclude stream-end micro-stalls: the paper's rebuffering events
        // under carrier throttling were all multi-second.
        .filter(|s| s.truth >= SimDuration::from_secs(1))
        .collect();
    (
        summarize("YouTube initial loading", &loading),
        summarize("YouTube rebuffering", &rebuffer),
    )
}

/// Record the page-load accuracy session.
fn page_session(reps: usize, seed: u64) -> Collection {
    let world = browser_world(BrowserConfig::chrome(), NetKind::Wifi, seed);
    let mut doctor = Controller::new(world);
    doctor.advance(SimDuration::from_secs(2));
    doctor.interact(&UiEvent::TypeText {
        target: ViewSignature::by_id("url_bar"),
        text: "http://www.example.com/".into(),
    });
    for _ in 0..reps {
        doctor.measure_after(
            "page_load",
            &UiEvent::KeyEnter,
            &WaitCondition::Hidden {
                id: "page_progress".into(),
            },
            SimDuration::from_secs(60),
        );
        doctor.advance(SimDuration::from_secs(5));
    }
    doctor.collect()
}

/// Page-load accuracy from a recorded session.
fn page_accuracy_from(col: &Collection) -> MetricAccuracy {
    let samples: Vec<AccuracySample> = col
        .behavior
        .iter()
        .filter(|(_, r)| r.action == "page_load" && !r.timed_out)
        .filter_map(|(_, rec)| accuracy_trigger(rec, &col.camera, "page_progress:hide"))
        .collect();
    summarize("Web page loading", &samples)
}

/// Mapping ratios and CPU overhead from a 3G photo-upload session.
#[derive(Debug, Clone)]
pub struct ToolOverhead {
    /// Uplink IP→RLC mapping score.
    pub ul_mapping: MappingScore,
    /// Downlink IP→RLC mapping score.
    pub dl_mapping: MappingScore,
    /// Controller CPU share of total CPU during the session (%).
    pub cpu_overhead_percent: f64,
}

impl fmt::Display for ToolOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mapping ul {:>5.2}% (correct {:>5.1}%)  dl {:>5.2}% (correct {:>5.1}%)  cpu overhead {:>4.2}%",
            self.ul_mapping.mapped_ratio * 100.0,
            self.ul_mapping.correct_ratio * 100.0,
            self.dl_mapping.mapped_ratio * 100.0,
            self.dl_mapping.correct_ratio * 100.0,
            self.cpu_overhead_percent
        )
    }
}

/// Compute Table 3's mapping + overhead rows.
pub fn overhead(reps: usize, seed: u64) -> ToolOverhead {
    overhead_from(&run_posts(PostKind::Photos, NetKind::Umts3g, reps, seed))
}

/// Table 3's mapping + overhead rows from a recorded photo-post session.
/// This is an evaluation-only analysis: it scores the mapper against the
/// `pdu_truth` ground truth, which the bundle format keeps segregated from
/// the observable artifacts.
pub fn overhead_from(col: &Collection) -> ToolOverhead {
    let qxdm = col.qxdm.as_ref().expect("cellular");
    let truth = col.pdu_truth.as_ref().expect("truth log");
    let map_dir = |dir: Direction| -> MappingScore {
        let pkts: Vec<(SimTime, &IpPacket)> = col
            .trace
            .iter()
            .filter(|(_, r)| r.dir == dir)
            .map(|(at, r)| (at, &r.pkt))
            .collect();
        let mapped = long_jump_map(&pkts, qxdm, dir);
        score_mapping(&mapped, truth, dir)
    };
    let cpu = col.cpu;
    let total = cpu.app_busy.as_secs_f64() + cpu.controller_busy.as_secs_f64();
    ToolOverhead {
        ul_mapping: map_dir(Direction::Uplink),
        dl_mapping: map_dir(Direction::Downlink),
        cpu_overhead_percent: if total > 0.0 {
            cpu.controller_busy.as_secs_f64() / total * 100.0
        } else {
            0.0
        },
    }
}

/// One §7.1 campaign job's output: Fig. 6 accuracy bars or the Table 3
/// mapping/overhead row.
#[derive(Debug, Clone)]
pub enum Table3Part {
    /// One or two Fig. 6 bars (the video job yields loading + rebuffering).
    Bars(Vec<MetricAccuracy>),
    /// The mapping-ratio and CPU-overhead row.
    Overhead(ToolOverhead),
}

/// The §7.1 evaluation as a two-stage campaign: one job per metric
/// scenario plus the overhead session, in Fig. 6 bar order.
pub fn staged(reps: usize, seed: u64) -> harness::StagedCampaign<Collection, Table3Part> {
    let name = "table3_fig6";
    let mut c = harness::StagedCampaign::new(name);
    c.job(
        "accuracy/posts",
        seed,
        crate::stage::config_digest(name, "accuracy/posts", &[reps as u64]),
        move || posts_session(reps, seed),
        |col: &Collection| Table3Part::Bars(vec![posts_accuracy_from(col)]),
    );
    c.job(
        "accuracy/pull",
        seed ^ 1,
        crate::stage::config_digest(name, "accuracy/pull", &[reps as u64]),
        move || pull_session(reps, seed ^ 1),
        |col: &Collection| Table3Part::Bars(vec![pull_accuracy_from(col)]),
    );
    c.job(
        "accuracy/video",
        seed ^ 2,
        crate::stage::config_digest(name, "accuracy/video", &[reps.min(10) as u64]),
        move || video_session(reps.min(10), seed ^ 2),
        |col: &Collection| {
            let (loading, rebuffer) = video_accuracy_from(col);
            Table3Part::Bars(vec![loading, rebuffer])
        },
    );
    c.job(
        "accuracy/page",
        seed ^ 3,
        crate::stage::config_digest(name, "accuracy/page", &[reps as u64]),
        move || page_session(reps, seed ^ 3),
        |col: &Collection| Table3Part::Bars(vec![page_accuracy_from(col)]),
    );
    c.job(
        "overhead",
        seed ^ 4,
        crate::stage::config_digest(name, "overhead", &[reps.min(10) as u64]),
        move || run_posts(PostKind::Photos, NetKind::Umts3g, reps.min(10), seed ^ 4),
        |col: &Collection| Table3Part::Overhead(overhead_from(col)),
    );
    c
}

/// The §7.1 evaluation as a plain (fused record+analyze) campaign.
pub fn campaign(reps: usize, seed: u64) -> harness::Campaign<Table3Part> {
    staged(reps, seed).into_campaign(&harness::StageMode::Inline)
}

/// Run the full §7.1 evaluation: Fig. 6's five bars plus Table 3.
pub fn run(reps: usize, seed: u64) -> (Vec<MetricAccuracy>, ToolOverhead) {
    let mut bars = Vec::new();
    let mut overhead = None;
    for part in campaign(reps, seed).run(1).into_outputs() {
        match part {
            Table3Part::Bars(b) => bars.extend(b),
            Table3Part::Overhead(o) => overhead = Some(o),
        }
    }
    (bars, overhead.expect("campaign includes the overhead job"))
}
