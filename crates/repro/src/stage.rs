//! Staged-campaign helpers shared by the experiment modules.

use trace::Digest;

/// Content digest of one experiment cell's configuration: everything
/// besides the seed that shapes what the cell's record stage simulates.
///
/// The digest keys the cell's on-disk bundle (together with the seed and
/// the trace format version), so it must cover the *effective* scale
/// parameters — a bundle recorded with `--quick` then analyzed at full
/// scale is detected as stale instead of silently producing wrong rows.
/// Scalar parameters go in `params`; the campaign and label strings cover
/// the categorical dimensions (network kind, app version, post kind, …).
pub fn config_digest(campaign: &str, label: &str, params: &[u64]) -> u64 {
    let mut d = Digest::new().str(campaign).str(label);
    for p in params {
        d = d.u64(*p);
    }
    d.finish()
}

/// Like [`config_digest`] with an extra float parameter (throttle rates).
pub fn config_digest_rate(campaign: &str, label: &str, params: &[u64], rate: f64) -> u64 {
    Digest::new()
        .u64(config_digest(campaign, label, params))
        .f64(rate)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_scales_and_labels() {
        let quick = config_digest("fig17", "LTE", &[4]);
        let full = config_digest("fig17", "LTE", &[24]);
        assert_ne!(quick, full, "scale must change the digest");
        assert_ne!(
            config_digest("fig17", "LTE", &[4]),
            config_digest("fig17", "3G", &[4])
        );
        assert_eq!(quick, config_digest("fig17", "LTE", &[4]));
        assert_ne!(
            config_digest_rate("fig19_20", "LTE", &[2], 100e3),
            config_digest_rate("fig19_20", "LTE", &[2], 200e3)
        );
    }
}
