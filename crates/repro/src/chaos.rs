//! Chaos campaign — QoE under injected cross-layer faults.
//!
//! Not a figure of the paper but a direct exercise of its thesis: QoE
//! Doctor's cross-layer analysis should attribute a QoE degradation to the
//! layer that actually caused it. We replay the §7.5 video scenario and the
//! §7.7 page-load scenario over a grid of deterministic fault injections
//! (`faults` crate) — link outages, burst loss, latency spikes, DNS and
//! origin-server failures, inter-RAT handovers, RRC promotion failures, RLC
//! storms, app crashes, and ANR-style UI freezes — and for each cell report
//! the measured QoE delta plus the layer the diagnosis pins the worst user
//! wait on. The resilient controller (UI watchdog + retry/recovery) keeps
//! every cell terminating: a crashed app is recovered by re-issuing the
//! interactions, a crash-looping app exhausts its retry budget and lands as
//! a `faulted` campaign record instead of hanging or poisoning aggregates.

use crate::scenario::{browser_world, youtube_world, NetKind};
use device::apps::{BrowserConfig, VideoSpec};
use device::{UiEvent, ViewSignature};
use faults::{FaultKind, FaultLayer, FaultPlan, Window};
use harness::{Campaign, Json, Record};
use netstack::GilbertElliott;
use qoe_doctor::{diagnose_worst, ControlError, Controller, RetryPolicy, WaitCondition};
use radio::{RadioTech, RrcState};
use simcore::{SimDuration, SimTime};

/// One chaos cell's result row.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario family: `"video"` or `"page"`.
    pub scenario: &'static str,
    /// Injected fault label, or `"baseline"`.
    pub fault: String,
    /// Layer the fault targets (`None` for the baseline).
    pub expected: Option<&'static str>,
    /// Worst calibrated user wait in the cell (seconds).
    pub latency_s: f64,
    /// Rebuffering ratio (video cells; 0 for page cells).
    pub rebuffering: f64,
    /// Controller-level attempts the worst measurement needed.
    pub attempts: u32,
    /// App crashes observed.
    pub crashes: u32,
    /// Whether the UI watchdog diagnosed a frozen layout tree.
    pub ui_frozen: bool,
    /// Layer the cross-layer diagnosis attributes the worst wait to.
    pub attributed: &'static str,
    /// Whether the attribution matches the injected layer (`None` for the
    /// baseline, which has nothing to attribute).
    pub attribution_ok: Option<bool>,
}

impl Record for ChaosRow {
    fn row(&self) -> String {
        let verdict = match self.attribution_ok {
            None => "-".into(),
            Some(true) => "OK".into(),
            Some(false) => format!("MISS (expected {})", self.expected.unwrap_or("?")),
        };
        format!(
            "{:<5} {:<18} wait {:>6.1}s  rebuf {:>4.2}  attempts {}  crashes {}  frozen {:<5}  -> {:<7} {}",
            self.scenario,
            self.fault,
            self.latency_s,
            self.rebuffering,
            self.attempts,
            self.crashes,
            self.ui_frozen,
            self.attributed,
            verdict
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario)),
            ("fault", Json::from(self.fault.as_str())),
            ("expected_layer", Json::from(self.expected)),
            ("latency_s", Json::Num(self.latency_s)),
            ("rebuffering", Json::Num(self.rebuffering)),
            ("attempts", Json::from(self.attempts as u64)),
            ("crashes", Json::from(self.crashes as u64)),
            ("ui_frozen", Json::from(self.ui_frozen)),
            ("attributed_layer", Json::from(self.attributed)),
            ("attribution_ok", Json::from(self.attribution_ok)),
        ])
    }

    fn sample_sets(&self) -> Vec<(&'static str, Vec<f64>)> {
        vec![
            ("latency_s", vec![self.latency_s]),
            ("rebuffering", vec![self.rebuffering]),
        ]
    }
}

fn is_lte(s: RrcState) -> bool {
    matches!(
        s,
        RrcState::LteIdle | RrcState::LteContinuous | RrcState::LteShortDrx | RrcState::LteLongDrx
    )
}

/// Attribute the worst wait to a layer using only collected evidence —
/// never the injected plan. Cascade: hard device evidence (watchdog-frozen
/// UI, app crashes) first, then radio evidence (an inter-RAT handover
/// inside the window, or an RRC/RLC-dominated network share), then a
/// network-bound verdict, else the device.
fn attribute(crashes: u32, ui_frozen: bool, worst: Option<&qoe_doctor::Diagnosis>) -> &'static str {
    if ui_frozen || crashes > 0 {
        return "device";
    }
    let Some(d) = worst else { return "none" };
    if d.rrc_transitions
        .iter()
        .any(|(_, tr)| is_lte(tr.from) != is_lte(tr.to))
    {
        return "radio";
    }
    // A healthy air interface retransmits almost nothing; a window where a
    // sizable share of RLC PDUs are retransmissions is first-hop loss.
    if d.rlc_retx_ratio > 0.15 {
        return "radio";
    }
    // OTA-dominated verdicts are deliberately NOT radio evidence: a core
    // outage also inflates poll→STATUS waits (the far side simply never
    // answers), while genuine air-interface loss shows up in the
    // retransmission ratio above.
    let v = d.verdict();
    if v.contains("RLC transmission") || v.contains("RRC promotion") {
        return "radio";
    }
    if v.starts_with("network-bound") {
        return "network";
    }
    "device"
}

const VIDEO_NAME: &str = "chaosvid";

fn search_events() -> [UiEvent; 2] {
    [
        UiEvent::TypeText {
            target: ViewSignature::by_id("search_box"),
            text: String::new(),
        },
        UiEvent::KeyEnter,
    ]
}

/// Run one video chaos cell: search, play one video under `plan`, recover
/// as needed, and attribute the worst wait. Returns `Err` when the cell
/// could not produce a measurement within its retry budget (crash loops).
pub fn video_cell(
    fault: String,
    expected: Option<FaultLayer>,
    plan: &FaultPlan,
    net: NetKind,
    seed: u64,
) -> Result<ChaosRow, String> {
    let spec = VideoSpec {
        name: VIDEO_NAME.into(),
        duration: SimDuration::from_secs(60),
        bitrate_bps: 420e3,
    };
    // Full QxDM logging: radio attribution needs per-PDU records.
    let mut world = youtube_world(vec![spec], None, net, seed, false);
    plan.arm(&mut world);
    let mut doctor = Controller::new(world)
        // The player UI only redraws on phase transitions, so an unstalled
        // 60 s playback is legitimately static for its full duration; the
        // threshold must clear that, or every healthy cell reads as frozen.
        .with_watchdog(SimDuration::from_secs(75));
    doctor.advance(SimDuration::from_secs(5));
    for ev in search_events() {
        doctor.interact(&ev);
    }
    doctor.advance(SimDuration::from_secs(10));

    let click = UiEvent::Click {
        target: ViewSignature::by_id(&format!("result_{VIDEO_NAME}")),
    };
    // "status reads playing" rather than "progress bar gone": a crashed
    // app's blank relaunch UI satisfies the latter vacuously, which would
    // turn a dead player into a fast bogus success.
    let loaded = WaitCondition::TextIs {
        id: "player_status".into(),
        value: "playing".into(),
    };
    // Bounded retries with recovery: a relaunched app forgot its search
    // results, so each retry re-issues the search before clicking again.
    let mut attempts = 1u32;
    let mut ui_frozen = false;
    let mut measured = doctor.try_measure_after(
        "video:initial_loading",
        &click,
        &loaded,
        SimDuration::from_secs(120),
    );
    while let Err(e) = &measured {
        if matches!(e, ControlError::UiFrozen { .. }) {
            ui_frozen = true;
        }
        if attempts >= 3 {
            break;
        }
        attempts += 1;
        doctor.advance(SimDuration::from_secs(5));
        for ev in search_events() {
            doctor.interact(&ev);
        }
        doctor.advance(SimDuration::from_secs(5));
        measured = doctor.try_measure_after(
            "video:initial_loading",
            &click,
            &loaded,
            SimDuration::from_secs(120),
        );
    }

    let (loading_s, rebuffering) = match &measured {
        Ok(m) => {
            let budget = SimDuration::from_secs(60) * 2 + SimDuration::from_secs(120);
            let report = doctor.monitor_playback("video", budget);
            ui_frozen |= report.ui_frozen;
            (
                m.record.calibrated().as_secs_f64(),
                report.rebuffering_ratio(),
            )
        }
        Err(e) => {
            if fault == "crash_loop" {
                return Err(format!("no measurement after {attempts} attempts: {e}"));
            }
            (f64::NAN, 1.0)
        }
    };

    let crashes = doctor.world.phone.crashes;
    let col = doctor.collect();
    let worst = diagnose_worst(&col);
    let attributed = attribute(crashes, ui_frozen, worst.as_ref());
    // Report the worst user wait in the cell — a fault that spares the
    // initial loading still shows up through its rebuffer records.
    let latency_s = worst
        .as_ref()
        .map(|d| d.user_latency.as_secs_f64())
        .unwrap_or(if loading_s.is_nan() { 0.0 } else { loading_s });
    Ok(ChaosRow {
        scenario: "video",
        fault,
        expected: expected.map(FaultLayer::label),
        latency_s,
        rebuffering,
        attempts,
        crashes,
        ui_frozen,
        attributed,
        attribution_ok: expected.map(|l| l.label() == attributed),
    })
}

/// Run one page-load chaos cell on the default 3G machine.
pub fn page_cell(
    fault: String,
    expected: Option<FaultLayer>,
    plan: &FaultPlan,
    seed: u64,
) -> ChaosRow {
    let mut world = browser_world(BrowserConfig::chrome(), NetKind::Umts3g, seed);
    plan.arm(&mut world);
    let mut doctor = Controller::new(world).with_watchdog(SimDuration::from_secs(20));
    doctor.advance(SimDuration::from_secs(2));
    let type_url = UiEvent::TypeText {
        target: ViewSignature::by_id("url_bar"),
        text: "http://www.example.com/".into(),
    };
    let loaded = WaitCondition::Hidden {
        id: "page_progress".into(),
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        backoff: SimDuration::from_secs(5),
        relaunch: None,
    };
    let result = doctor.measure_with_retry(
        "page_load",
        std::slice::from_ref(&type_url),
        &UiEvent::KeyEnter,
        &loaded,
        SimDuration::from_secs(60),
        &policy,
    );
    let (attempts, ui_frozen) = match &result {
        Ok((_, attempts)) => (*attempts, false),
        Err(e) => (
            policy.max_attempts,
            matches!(e, ControlError::UiFrozen { .. }),
        ),
    };
    // A second, fault-free load for contrast in the log.
    doctor.advance(SimDuration::from_secs(25));
    doctor.interact(&type_url);
    doctor.measure_after(
        "page_load",
        &UiEvent::KeyEnter,
        &loaded,
        SimDuration::from_secs(60),
    );

    let crashes = doctor.world.phone.crashes;
    let col = doctor.collect();
    let worst = diagnose_worst(&col);
    let attributed = attribute(crashes, ui_frozen, worst.as_ref());
    ChaosRow {
        scenario: "page",
        fault,
        expected: expected.map(FaultLayer::label),
        latency_s: worst
            .as_ref()
            .map(|d| d.user_latency.as_secs_f64())
            .unwrap_or(0.0),
        rebuffering: 0.0,
        attempts,
        crashes,
        ui_frozen,
        attributed,
        attribution_ok: expected.map(|l| l.label() == attributed),
    }
}

/// The video fault grid. Windows are placed to overlap the initial-loading
/// and early-playback phases (click lands at ~15 s of sim time).
fn video_grid() -> Vec<(&'static str, FaultPlan)> {
    let burst = GilbertElliott {
        good_to_bad: 0.05,
        bad_to_good: 0.3,
        loss_good: 0.0,
        loss_bad: 0.5,
    };
    vec![
        ("baseline", FaultPlan::new()),
        (
            "link_outage",
            FaultPlan::new().with_kind(FaultKind::LinkOutage {
                window: Window::span_secs(16, 28),
            }),
        ),
        (
            "burst_loss",
            FaultPlan::new().with_kind(FaultKind::BurstLoss {
                window: Window::span_secs(16, 46),
                model: burst,
            }),
        ),
        (
            "latency_spike",
            FaultPlan::new().with_kind(FaultKind::LatencySpike {
                window: Window::span_secs(16, 46),
                extra: SimDuration::from_millis(800),
            }),
        ),
        (
            "server_stall",
            FaultPlan::new().with_kind(FaultKind::ServerStall {
                server: "video.youtube.com".into(),
                window: Window::span_secs(16, 31),
            }),
        ),
        (
            "tech_switch",
            FaultPlan::new().with_kind(FaultKind::TechSwitch {
                at: SimTime::from_secs(16),
                to: RadioTech::Umts3g,
            }),
        ),
        (
            "rlc_storm",
            FaultPlan::new().with_kind(FaultKind::RlcStorm {
                window: Window::span_secs(16, 36),
                loss: 0.35,
            }),
        ),
        (
            "app_crash",
            FaultPlan::new().with_kind(FaultKind::AppCrash {
                at: SimTime::from_secs(17),
                relaunch: SimDuration::from_millis(2_500),
            }),
        ),
        (
            "ui_freeze",
            // Long enough to outlast the 75 s watchdog from the last
            // pre-freeze redraw (~15 s), so the monitor flags it.
            FaultPlan::new().with_kind(FaultKind::UiFreeze {
                window: Window::span_secs(16, 110),
            }),
        ),
    ]
}

/// The page-load fault grid (first load starts at ~2 s of sim time).
fn page_grid() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("baseline", FaultPlan::new()),
        (
            "dns_outage",
            FaultPlan::new().with_kind(FaultKind::DnsOutage {
                window: Window::span_secs(2, 14),
            }),
        ),
        (
            "promotion_failure",
            FaultPlan::new().with_kind(FaultKind::PromotionFailure {
                count: 4,
                penalty: SimDuration::from_millis(1_500),
            }),
        ),
        (
            "server_stall",
            FaultPlan::new().with_kind(FaultKind::ServerStall {
                server: "www.example.com".into(),
                window: Window::span_secs(2, 12),
            }),
        ),
        (
            "ui_freeze",
            // Covers all three controller attempts (each trips the 20 s
            // watchdog, then backs off), so the cell ends in UiFrozen
            // rather than a lucky late success.
            FaultPlan::new().with_kind(FaultKind::UiFreeze {
                window: Window::span_secs(3, 90),
            }),
        ),
    ]
}

fn expected_layer(plan: &FaultPlan) -> Option<FaultLayer> {
    plan.layers().first().copied()
}

/// The chaos campaign: video + page fault grids, plus a crash-looping
/// video cell that exhausts its retry budget and must land as `faulted`.
pub fn campaign(seed: u64) -> Campaign<ChaosRow> {
    let mut c = Campaign::new("chaos");
    // Per-job sim watchdog: far above any cell's legitimate sim span
    // (~400 s), so a wedged cell is recorded instead of hanging.
    c.sim_cap(SimDuration::from_secs(3_600));
    // Policed LTE at ~1.4× the video bitrate: healthy playback never
    // stalls, but the buffer stays shallow enough that a mid-stream fault
    // produces a measurable QoE delta. Unthrottled LTE would download the
    // whole clip before the first fault window opens.
    let net = NetKind::LteThrottled(900e3);
    for (fault, plan) in video_grid() {
        let expected = expected_layer(&plan);
        c.fallible_job(format!("video/{fault}"), seed, 1, move |_| {
            video_cell(fault.to_string(), expected, &plan, net, seed)
        });
    }
    // Crash loop: on a throttled link the ~7 s initial buffering never
    // fits inside the ~3.5 s of uptime between crashes, every
    // controller-level retry fails, and the harness records the cell as
    // faulted after two attempts — without disturbing any other job.
    let mut loop_plan = FaultPlan::new();
    for at in (16..1_200).step_by(5) {
        loop_plan = loop_plan.with_kind(FaultKind::AppCrash {
            at: SimTime::from_secs(at),
            relaunch: SimDuration::from_millis(1_500),
        });
    }
    c.fallible_job("video/crash_loop", seed, 2, move |_| {
        video_cell(
            "crash_loop".to_string(),
            Some(FaultLayer::Device),
            &loop_plan,
            NetKind::LteThrottled(900e3),
            seed,
        )
    });
    for (fault, plan) in page_grid() {
        let expected = expected_layer(&plan);
        c.job(format!("page/{fault}"), seed, move || {
            page_cell(fault.to_string(), expected, &plan, seed)
        });
    }
    c
}

/// Run the chaos campaign single-threaded (library entry point; the
/// `repro` binary runs it with `--jobs`).
pub fn run(seed: u64) -> Vec<ChaosRow> {
    campaign(seed).run(1).ok_outputs()
}
