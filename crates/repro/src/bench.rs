//! `repro bench` — the performance snapshot behind `results/BENCH_pr3.json`.
//!
//! Times the hot paths the PR 3 optimization pass targeted, end to end:
//! event-queue churn in `simcore`, the indexed long-jump mapper and
//! `TimeIndex`-based latency attribution against their naive references,
//! and the fig17 quick campaign as a whole-pipeline wall-time probe. The
//! result is a machine-readable snapshot (wall time plus events/sec or
//! packets/sec per scenario) written under `results/`, so a later change
//! can be diffed against the committed baseline.
//!
//! These are coarse wall-clock measurements meant for trend tracking and CI
//! smoke thresholds; `cargo bench -p bench` has the statistically careful
//! versions.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use harness::Json;
use netstack::pcap::Direction;
use netstack::{IpAddr, IpPacket, Proto, SocketAddr, TcpFlags, TcpHeader};
use qoe_doctor::analyze::crosslayer::{
    long_jump_map_with, net_latency_breakdown, reference, MapperOptions,
};
use radio::qxdm::{Qxdm, QxdmConfig};
use radio::rlc::{RlcChannel, RlcConfig};
use simcore::{DetRng, EventQueue, SimDuration, SimTime};

/// One timed scenario: `units` is what the scenario processed per
/// iteration, so `units / wall` is its throughput.
struct Timing {
    name: &'static str,
    wall_ms: f64,
    units: f64,
    unit: &'static str,
}

impl Timing {
    fn per_sec(&self) -> f64 {
        self.units / (self.wall_ms / 1e3)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name)),
            ("wall_ms", Json::Num(self.wall_ms)),
            (
                match self.unit {
                    "events" => "events_per_sec",
                    "packets" => "packets_per_sec",
                    _ => "units_per_sec",
                },
                Json::Num(self.per_sec()),
            ),
        ])
    }
}

/// Best-of-`iters` wall time for `f`, which processes `units` units.
fn time(
    name: &'static str,
    units: f64,
    unit: &'static str,
    iters: usize,
    mut f: impl FnMut(),
) -> Timing {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    Timing {
        name,
        wall_ms: best,
        units,
        unit,
    }
}

fn bulk_packet(id: u64, len: u32) -> IpPacket {
    IpPacket {
        id,
        src: SocketAddr::new(IpAddr::new(10, 0, 0, 1), 40000),
        dst: SocketAddr::new(IpAddr::new(10, 0, 0, 2), 443),
        proto: Proto::Tcp,
        tcp: Some(TcpHeader {
            seq: 1 + id * 1400,
            ack: 0,
            flags: TcpFlags {
                ack: true,
                ..Default::default()
            },
        }),
        payload_len: len,
        udp_payload: None,
        markers: Vec::new(),
    }
}

/// Run `n` packets through a 3G uplink RLC channel into a QxDM log with
/// `record_loss` (the microbench fixture, at `repro bench` scale).
fn mapping_fixture(n: u64, record_loss: f64) -> (Vec<(SimTime, IpPacket)>, Qxdm, SimTime) {
    let mut cfg = RlcConfig::umts_uplink();
    cfg.pdu_loss = 0.0;
    cfg.ota_jitter = 0.0;
    let mut ch = RlcChannel::new(cfg, Direction::Uplink, DetRng::seed_from_u64(2));
    let mut packets = Vec::new();
    for i in 0..n {
        let pkt = bulk_packet(i, 200 + ((i * 37) % 1200) as u32);
        packets.push((SimTime::from_micros(i), pkt.clone()));
        ch.enqueue(pkt, SimTime::ZERO);
    }
    let mut qx = Qxdm::new(
        QxdmConfig {
            ul_record_loss: record_loss,
            dl_record_loss: 0.0,
            log_pdus: true,
        },
        DetRng::seed_from_u64(3),
    );
    let mut now = SimTime::ZERO;
    loop {
        ch.poll(now, true, 1.6e6);
        for (at, ev) in ch.take_pdu_events(now) {
            qx.observe_pdu(at, &ev);
        }
        for (at, ev) in ch.take_status_events(now) {
            qx.observe_status(at, &ev);
        }
        ch.take_exits(now);
        match ch.next_wake(true) {
            Some(w) if w > now => now = w,
            Some(_) => continue,
            None => break,
        }
    }
    (packets, qx, now)
}

/// Run the benchmark suite, print human-readable rows, and write
/// `BENCH_pr3.json` under `out_dir`. Returns the number of failures (file
/// write problems; the measurements themselves cannot fail).
pub fn run_bench(jobs: usize, seed: u64, out_dir: &Path) -> usize {
    let mut scenarios: Vec<Timing> = Vec::new();

    // 1. Event-queue churn: the simulator's innermost loop.
    const QN: u64 = 200_000;
    scenarios.push(time("event_queue_push_pop", QN as f64, "events", 3, || {
        let mut q = EventQueue::new();
        for i in 0..QN {
            q.push(SimTime::from_micros((i * 7919) % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum);
    }));

    // 2. Same-instant batch drain: the link-pipe delivery shape.
    scenarios.push(time(
        "event_queue_same_time_batch",
        QN as f64,
        "events",
        3,
        || {
            let mut q = EventQueue::new();
            let mut scratch = Vec::new();
            for i in 0..QN {
                q.push(SimTime::from_micros(i % 64), i);
            }
            let mut sum = 0u64;
            for t in 0..64u64 {
                scratch.clear();
                q.pop_due_batch(SimTime::from_micros(t), &mut scratch);
                for (_, v) in scratch.drain(..) {
                    sum = sum.wrapping_add(v);
                }
            }
            black_box(sum);
        },
    ));

    // 3/4. Long-jump mapping at 10k-packet scale, indexed vs reference.
    let (packets, qx, end) = mapping_fixture(10_000, 0.02);
    let refs: Vec<(SimTime, &IpPacket)> = packets.iter().map(|(at, p)| (*at, p)).collect();
    let opts = MapperOptions::default();
    let n = refs.len() as f64;
    scenarios.push(time("crosslayer_map_indexed", n, "packets", 3, || {
        black_box(long_jump_map_with(&refs, &qx.log, Direction::Uplink, opts).len());
    }));
    scenarios.push(time("crosslayer_map_reference", n, "packets", 3, || {
        black_box(reference::long_jump_map_with(&refs, &qx.log, Direction::Uplink, opts).len());
    }));

    // 5/6. Latency attribution over the full fixture window.
    let mapped = long_jump_map_with(&refs, &qx.log, Direction::Uplink, opts);
    let net = SimDuration::from_millis(500);
    scenarios.push(time("net_breakdown_indexed", n, "packets", 3, || {
        black_box(
            net_latency_breakdown(SimTime::ZERO, end, net, &mapped, &qx.log, Direction::Uplink).ota,
        );
    }));
    scenarios.push(time("net_breakdown_reference", n, "packets", 1, || {
        black_box(
            reference::net_latency_breakdown(
                SimTime::ZERO,
                end,
                net,
                &mapped,
                &qx.log,
                Direction::Uplink,
            )
            .ota,
        );
    }));

    // 7. Whole-pipeline probe: the fig17 quick campaign (simulate →
    // collect → analyze → aggregate), on the configured worker count.
    scenarios.push(time("fig17_quick_campaign", 4.0, "videos", 1, || {
        let run = crate::exp75::campaign_fig17(4, seed).run(jobs);
        black_box(run.jobs.len());
    }));

    for s in &scenarios {
        let rate = s.per_sec();
        // Sub-1/s rates (whole-campaign probes) need decimals to be legible.
        let digits = if rate < 100.0 { 2 } else { 0 };
        println!(
            "{:32} {:>10.2} ms   {:>12.*} {}/s",
            s.name, s.wall_ms, digits, rate, s.unit
        );
    }
    let map_speedup = speedup(
        &scenarios,
        "crosslayer_map_reference",
        "crosslayer_map_indexed",
    );
    let nb_speedup = speedup(
        &scenarios,
        "net_breakdown_reference",
        "net_breakdown_indexed",
    );
    println!("crosslayer_map speedup: {map_speedup:.2}x");
    println!("net_breakdown speedup:  {nb_speedup:.2}x");

    let doc = Json::obj([
        ("bench", Json::from("pr3")),
        ("jobs", Json::from(jobs as u64)),
        (
            "scenarios",
            Json::arr(scenarios.iter().map(Timing::to_json)),
        ),
        (
            "speedups",
            Json::obj([
                ("crosslayer_map", Json::Num(map_speedup)),
                ("net_breakdown", Json::Num(nb_speedup)),
            ]),
        ),
    ]);
    let path = out_dir.join("BENCH_pr3.json");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("repro: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            0
        }
        Err(e) => {
            eprintln!("repro: failed to write {}: {e}", path.display());
            1
        }
    }
}

fn speedup(scenarios: &[Timing], slow: &str, fast: &str) -> f64 {
    let wall = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.wall_ms)
            .unwrap_or(f64::NAN)
    };
    wall(slow) / wall(fast)
}
