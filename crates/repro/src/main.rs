//! `repro` — regenerate every table and figure of the QoE Doctor paper.
//!
//! ```text
//! repro [experiment] [--quick] [--jobs N] [--json DIR] [--cache DIR]
//! repro record [experiment] --out DIR [--quick] [--jobs N] [--json DIR]
//! repro analyze DIR [experiment] [--quick] [--jobs N] [--json DIR]
//!
//! experiments:
//!   table1 table2 table3 fig6 fig7 fig8 fig10 fig11 fig12 fig13
//!   fig14 fig15 fig16 fig17 fig18 fig19 fig20 exp76 exp77 ablation chaos all
//! ```
//!
//! Every experiment runs as a `harness` campaign: a grid of independent
//! seeded simulation worlds executed on `--jobs` worker threads. Results
//! are collected in job order, so the printed rows are byte-identical for
//! `--jobs 1` and `--jobs N`. `--quick` runs reduced repetition counts
//! (used by CI and the bench harness); the default counts match
//! EXPERIMENTS.md. `--json DIR` additionally writes one machine-readable
//! campaign report (run journal + merged aggregates) per campaign.
//!
//! `record` simulates each campaign job and persists its trace bundle
//! under `--out DIR` without analyzing; `analyze DIR` re-runs only the
//! analysis stage against those bundles and prints exactly what the
//! inline run would have printed. `--cache DIR` fuses the two: bundles
//! are keyed by (format version, seed, config digest), hits skip the
//! simulation, misses record through the cache.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use harness::{Campaign, Outcome, Record, StageMode, StagedCampaign};
use trace::BundleArtifact;

struct Scale {
    accuracy_reps: usize,
    post_reps: usize,
    bg_hours: u64,
    updates: usize,
    videos: usize,
    sweep_videos: usize,
    ad_reps: usize,
    page_reps: usize,
    monitor_epochs: usize,
}

const FULL: Scale = Scale {
    accuracy_reps: 30,
    post_reps: 15,
    bg_hours: repro::exp73::RUN_HOURS,
    updates: 30,
    videos: 24,
    sweep_videos: 6,
    ad_reps: 8,
    page_reps: 12,
    monitor_epochs: 10,
};

const QUICK: Scale = Scale {
    accuracy_reps: 6,
    post_reps: 4,
    bg_hours: 2,
    updates: 6,
    videos: 4,
    sweep_videos: 2,
    ad_reps: 2,
    page_reps: 3,
    monitor_epochs: 6,
};

const SEED: u64 = 20140705;

const USAGE: &str = "\
usage: repro [experiment] [--quick] [--jobs N] [--json DIR] [--cache DIR]
       repro record [experiment] --out DIR [--quick] [--jobs N] [--json DIR]
       repro analyze DIR [experiment] [--quick] [--jobs N] [--json DIR]

experiments:
  table1 table2 table3 fig6 fig7 fig8 fig10 fig11 fig12 fig13
  fig14 fig15 fig16 fig17 fig18 fig19 fig20 exp76 exp77 ablation
  chaos monitor all          (`repro list` prints one-line descriptions)

subcommands:
  record       simulate and persist each campaign job's trace bundle under
               --out DIR; no analysis runs
  analyze      load the bundles under DIR and re-run only the analysis;
               output matches the inline run byte for byte

other:
  list         print every experiment id with a one-line description
  bench        hot-path performance snapshot; writes BENCH_pr3.json under
               the --json directory (default: results/)
  monitor      longitudinal monitoring: re-measure a scenario grid over
               epochs, detect QoE regressions, attribute them to a layer

flags:
  --quick      reduced repetition counts (CI scale)
  --jobs N     worker threads per campaign (default: available parallelism)
  --json DIR   write machine-readable campaign reports under DIR
  --out DIR    bundle root for `record`
  --cache DIR  content-addressed bundle cache: hits skip the simulation
               (with `monitor`: also commits the epoch history index)
  --epochs N   monitoring history length (monitor only; default 10, 6 with
               --quick)
";

/// How the record and analyze stages of each campaign are executed.
enum RunMode {
    /// Record and analyze fused in memory (the default).
    Inline,
    /// Record bundles under the root; skip analysis.
    Record(PathBuf),
    /// Analyze bundles under the root; never simulate.
    Analyze(PathBuf),
    /// Content-addressed cache under the root.
    Cached(PathBuf),
}

impl RunMode {
    /// The staged-campaign lowering for non-`record` modes.
    fn stage_mode(&self) -> Option<StageMode> {
        match self {
            RunMode::Inline => Some(StageMode::Inline),
            RunMode::Analyze(dir) => Some(StageMode::Analyze(dir.clone())),
            RunMode::Cached(dir) => Some(StageMode::Cached(dir.clone())),
            RunMode::Record(_) => None,
        }
    }
}

struct Opts {
    scale: Scale,
    jobs: usize,
    json: Option<PathBuf>,
    mode: RunMode,
    epochs: Option<usize>,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(args: Vec<String>) -> (String, Opts) {
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut epochs: Option<usize> = None;
    let mut json: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut cache: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (arg.clone(), None),
        };
        let mut value = |name: &str| -> String {
            inline.clone().or_else(|| it.next()).unwrap_or_else(|| {
                usage_error(&format!("{name} requires a value"));
            })
        };
        match flag.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let v = value("--jobs");
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = Some(n),
                    _ => usage_error(&format!("invalid --jobs value: {v:?}")),
                }
            }
            "--epochs" => {
                let v = value("--epochs");
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => epochs = Some(n),
                    _ => usage_error(&format!("invalid --epochs value: {v:?}")),
                }
            }
            "--json" => json = Some(PathBuf::from(value("--json"))),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--cache" => cache = Some(PathBuf::from(value("--cache"))),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            f if f.starts_with('-') => usage_error(&format!("unknown flag: {f}")),
            _ => positional.push(arg),
        }
    }

    let mut pos = positional.into_iter();
    let (what, mode) = match pos.next().as_deref() {
        Some("record") => {
            let root = out
                .take()
                .unwrap_or_else(|| usage_error("record requires --out DIR"));
            if cache.is_some() {
                usage_error("--cache cannot be combined with record");
            }
            (
                pos.next().unwrap_or_else(|| "all".to_string()),
                RunMode::Record(root),
            )
        }
        Some("analyze") => {
            let root = pos
                .next()
                .unwrap_or_else(|| usage_error("analyze requires a bundle directory"));
            if out.is_some() || cache.is_some() {
                usage_error("--out/--cache cannot be combined with analyze");
            }
            (
                pos.next().unwrap_or_else(|| "all".to_string()),
                RunMode::Analyze(PathBuf::from(root)),
            )
        }
        first => {
            if out.is_some() {
                usage_error("--out only applies to `record`");
            }
            let what = first
                .map(str::to_string)
                .unwrap_or_else(|| "all".to_string());
            let mode = match cache.take() {
                Some(dir) => RunMode::Cached(dir),
                None => RunMode::Inline,
            };
            (what, mode)
        }
    };
    if let Some(extra) = pos.next() {
        usage_error(&format!("unexpected extra argument: {extra}"));
    }

    let opts = Opts {
        scale: if quick { QUICK } else { FULL },
        jobs: jobs.unwrap_or_else(harness::default_workers),
        json,
        mode,
        epochs,
    };
    (what, opts)
}

fn main() -> ExitCode {
    let (what, opts) = parse_args(env::args().skip(1).collect());

    let mut failed = 0usize;
    match what.as_str() {
        "all" => {
            for name in [
                "table1", "table2", "table3", "fig7", "fig10", "fig12", "fig14", "fig17", "fig18",
                "fig19", "exp76", "exp77", "ablation",
            ] {
                failed += run(name, &opts);
            }
        }
        name => failed += run(name, &opts),
    }

    if failed > 0 {
        eprintln!("repro: {failed} campaign job(s) failed (reported above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn header(name: &str, paper: &str) {
    println!("\n=== {name} — {paper} ===");
}

/// Run one campaign on the configured worker count, write its JSON report
/// if `--json` was given, report panicked jobs on stderr, and hand back the
/// successful rows in job order. Returns the rows plus the failed-job count.
fn campaign_rows<T: Record + Send>(c: Campaign<T>, opts: &Opts, failed: &mut usize) -> Vec<T> {
    let run = c.run(opts.jobs);
    if let Some(dir) = &opts.json {
        match harness::write_report(dir, &run) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("repro: failed to write report for {}: {e}", run.name),
        }
    }
    *failed += run.failed();
    if !matches!(opts.mode, RunMode::Inline) {
        // A faulted job in a staged mode means a bundle was missing, stale
        // or unreadable — that must fail the invocation, not just skip a
        // row (inline campaigns have their own retry/fault policy).
        *failed += run.faulted();
    }
    run.jobs
        .into_iter()
        .filter_map(|j| match j.outcome {
            Outcome::Ok(row) => Some(row),
            Outcome::Retried { row, attempts } => {
                eprintln!(
                    "repro: job {}/{} (seed {}) recovered after {attempts} attempts",
                    run.name, j.label, j.seed
                );
                Some(row)
            }
            Outcome::Faulted { reason, attempts } => {
                eprintln!(
                    "repro: job {}/{} (seed {}) faulted after {attempts} attempts: {reason}",
                    run.name, j.label, j.seed
                );
                None
            }
            Outcome::Panicked(msg) => {
                eprintln!(
                    "repro: job {}/{} (seed {}) panicked: {msg}",
                    run.name, j.label, j.seed
                );
                None
            }
        })
        .collect()
}

/// Lower a staged campaign according to the run mode. In `record` mode the
/// bundle rows are printed here and `None` is returned (there are no
/// analysis rows to print); otherwise the analysis rows come back for the
/// caller's experiment-specific rendering, which is shared verbatim by the
/// inline, analyze and cached modes.
fn staged_rows<A, T>(
    staged: StagedCampaign<A, T>,
    opts: &Opts,
    failed: &mut usize,
) -> Option<Vec<T>>
where
    A: BundleArtifact + Send + 'static,
    T: Record + Send + 'static,
{
    match &opts.mode {
        RunMode::Record(root) => {
            for row in campaign_rows(staged.into_record_campaign(root), opts, failed) {
                println!("{}", row.row());
            }
            None
        }
        mode => {
            let stage = mode.stage_mode().expect("non-record mode");
            Some(campaign_rows(staged.into_campaign(&stage), opts, failed))
        }
    }
}

fn run(name: &str, opts: &Opts) -> usize {
    let s = &opts.scale;
    let mut failed = 0usize;
    let recording = matches!(opts.mode, RunMode::Record(_));
    if opts.epochs.is_some() && name != "monitor" {
        usage_error("--epochs only applies to `monitor`");
    }
    match name {
        "list" => {
            repro::cli::print_list();
        }
        "monitor" => {
            if !matches!(opts.mode, RunMode::Inline | RunMode::Cached(_)) {
                usage_error("monitor supports only inline and --cache runs");
            }
            header(
                name,
                "Longitudinal QoE monitoring: epoch regressions + attribution",
            );
            let epochs = opts.epochs.unwrap_or(s.monitor_epochs);
            let spec = repro::monitor::spec(epochs, SEED);
            let stage = opts.mode.stage_mode().expect("inline or cached");
            let rows = campaign_rows(spec.build().into_campaign(&stage), opts, &mut failed);
            for r in &rows {
                println!("{}", r.row());
            }
            if rows.len() == spec.epochs * spec.cells.len() {
                print!("{}", repro::monitor::report(rows));
                if let RunMode::Cached(root) = &opts.mode {
                    // The epoch-history index is longitudinal state, not
                    // campaign output: report it on stderr so stdout stays
                    // byte-identical across runs and worker counts.
                    match repro::monitor::commit_history(&spec, root) {
                        Ok(fresh) => eprintln!(
                            "monitor: committed {fresh} new epoch entr{} to {}",
                            if fresh == 1 { "y" } else { "ies" },
                            root.join("index").display()
                        ),
                        Err(e) => {
                            eprintln!("repro: epoch history commit failed: {e}");
                            failed += 1;
                        }
                    }
                }
            } else {
                eprintln!("repro: monitor history incomplete; skipping detection");
            }
        }
        "bench" => {
            if !matches!(opts.mode, RunMode::Inline) {
                usage_error("bench does not support record/analyze/cache (it must run inline)");
            }
            header("bench", "Hot-path performance snapshot (BENCH_pr3.json)");
            let out_dir = opts
                .json
                .clone()
                .unwrap_or_else(|| PathBuf::from("results"));
            failed += repro::bench::run_bench(opts.jobs, SEED, &out_dir);
        }
        "table1" => {
            // Static tables have nothing to record; in the staged modes they
            // print exactly as inline so `analyze` output stays comparable.
            if !recording {
                header("table1", "Replayed behaviours and latency anchors");
                repro::tables::print_table1();
            }
        }
        "table2" => {
            if !recording {
                header("table2", "Experiment goals");
                repro::tables::print_table2();
            }
        }
        "table3" | "fig6" => {
            header(name, "Tool accuracy and overhead (§7.1)");
            if let Some(parts) = staged_rows(
                repro::exp71::staged(s.accuracy_reps, SEED),
                opts,
                &mut failed,
            ) {
                for part in parts {
                    println!("{}", part.row());
                }
            }
        }
        "fig7" | "fig8" => {
            header(name, "Post uploading breakdown (§7.2)");
            if let Some(runs) =
                staged_rows(repro::exp72::staged(s.post_reps, SEED), opts, &mut failed)
            {
                println!("-- Fig 7: device vs network delay --");
                for r in &runs {
                    println!("{}", r.fig7);
                }
                println!("-- Fig 8: fine-grained network latency (2 photos) --");
                for r in &runs {
                    if let Some(nb) = &r.fig8 {
                        println!("{nb}");
                    }
                }
            }
        }
        "fig10" | "fig11" => {
            header(name, "Background data/energy vs post frequency (§7.3)");
            if let Some(rows) = staged_rows(
                repro::exp73::staged_fig10_11(s.bg_hours, SEED),
                opts,
                &mut failed,
            ) {
                for r in rows {
                    println!("{r}");
                }
            }
        }
        "fig12" | "fig13" => {
            header(name, "Background data/energy vs refresh interval (§7.3)");
            if let Some(rows) = staged_rows(
                repro::exp73::staged_fig12_13(s.bg_hours, SEED),
                opts,
                &mut failed,
            ) {
                for r in rows {
                    println!("{r}");
                }
            }
        }
        "fig14" | "fig15" | "fig16" => {
            header(name, "WebView vs ListView news feed updates (§7.4)");
            if let Some(rows) =
                staged_rows(repro::exp74::staged(s.updates, SEED), opts, &mut failed)
            {
                for r in rows {
                    println!("{r}");
                    let cdf = r.cdf();
                    println!(
                        "         cdf: {}  {}",
                        repro::render::cdf_strip(&cdf, 1e3, "ms"),
                        repro::render::sparkline(&cdf.values)
                    );
                }
            }
        }
        "fig17" => {
            header(name, "Throttled vs unthrottled video QoE (§7.5)");
            if let Some(rows) = staged_rows(
                repro::exp75::staged_fig17(s.videos, SEED),
                opts,
                &mut failed,
            ) {
                for r in rows {
                    println!("{r}");
                    println!(
                        "         loading cdf: {}",
                        repro::render::cdf_strip(&r.loading_cdf(), 1.0, "s")
                    );
                }
            }
        }
        "fig18" => {
            header(name, "Shaping vs policing throughput signature (§7.5)");
            if let Some(traces) = staged_rows(repro::exp75::staged_fig18(SEED), opts, &mut failed) {
                let hi = traces
                    .iter()
                    .flat_map(|t| t.series.iter().cloned())
                    .fold(0.0f64, f64::max);
                for r in traces {
                    println!("{r}");
                    let ds = repro::render::downsample(&r.series, 64);
                    println!("         {}", repro::render::sparkline_in(&ds, 0.0, hi));
                }
            }
        }
        "fig19" | "fig20" => {
            header(name, "QoE vs throttled bandwidth sweep (§7.5)");
            if let Some(rows) = staged_rows(
                repro::exp75::staged_sweep(s.sweep_videos, SEED),
                opts,
                &mut failed,
            ) {
                for r in rows {
                    println!("{r}");
                }
            }
        }
        "exp76" => {
            header(name, "Video ads and loading time (§7.6)");
            if let Some(rows) =
                staged_rows(repro::exp76::staged(s.ad_reps, SEED), opts, &mut failed)
            {
                for r in rows {
                    println!("{r}");
                }
            }
        }
        "ablation" => {
            header(
                name,
                "Ablations: mapper mechanisms, calibration, throttle discipline",
            );
            if let Some(parts) = staged_rows(
                repro::ablation::staged(s.post_reps.min(8), s.accuracy_reps, 128e3, SEED),
                opts,
                &mut failed,
            ) {
                for part in parts {
                    match &part {
                        repro::ablation::AblationPart::Mapper(_) => {
                            println!("-- long-jump mapper resync mechanisms --")
                        }
                        repro::ablation::AblationPart::Calibration(_) => {
                            println!("-- §5.1 calibration --")
                        }
                        repro::ablation::AblationPart::Discipline(_) => {
                            println!("-- token-bucket discipline at 128 kb/s on LTE --")
                        }
                    }
                    println!("{}", part.row());
                }
            }
        }
        "chaos" => {
            if !matches!(opts.mode, RunMode::Inline) {
                usage_error("chaos does not support record/analyze/cache (it must run inline)");
            }
            header(name, "Fault injection: QoE deltas + layer attribution");
            let rows = campaign_rows(repro::chaos::campaign(SEED), opts, &mut failed);
            let misses = rows
                .iter()
                .filter(|r| r.attribution_ok == Some(false))
                .count();
            let judged = rows.iter().filter(|r| r.attribution_ok.is_some()).count();
            for r in &rows {
                println!("{}", r.row());
            }
            println!(
                "attribution: {}/{judged} fault cells on-layer",
                judged - misses
            );
        }
        "exp77" => {
            header(name, "RRC state machine design and page loads (§7.7)");
            if let Some(rows) =
                staged_rows(repro::exp77::staged(s.page_reps, SEED), opts, &mut failed)
            {
                for r in &rows {
                    println!("{r}");
                }
                println!(
                    "3G simplification reduces page load time by {:.1}% (paper: 22.8%)",
                    repro::exp77::reduction_percent(&rows)
                );
            }
        }
        other => {
            let mut msg = format!("unknown experiment: {other}");
            if let Some(suggestion) = repro::cli::closest_experiment(other) {
                msg.push_str(&format!(" (did you mean `{suggestion}`?)"));
            }
            usage_error(&msg);
        }
    }
    failed
}
