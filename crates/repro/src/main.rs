//! `repro` — regenerate every table and figure of the QoE Doctor paper.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   table1 table2 table3 fig6 fig7 fig8 fig10 fig11 fig12 fig13
//!   fig14 fig15 fig16 fig17 fig18 fig19 fig20 exp76 exp77 ablation all
//! ```
//!
//! `--quick` runs reduced repetition counts (used by CI and the bench
//! harness); the default counts match EXPERIMENTS.md.

use std::env;

struct Scale {
    accuracy_reps: usize,
    post_reps: usize,
    updates: usize,
    videos: usize,
    sweep_videos: usize,
    ad_reps: usize,
    page_reps: usize,
}

const FULL: Scale = Scale {
    accuracy_reps: 30,
    post_reps: 15,
    updates: 30,
    videos: 24,
    sweep_videos: 6,
    ad_reps: 8,
    page_reps: 12,
};

const QUICK: Scale = Scale {
    accuracy_reps: 6,
    post_reps: 4,
    updates: 6,
    videos: 4,
    sweep_videos: 2,
    ad_reps: 2,
    page_reps: 3,
};

const SEED: u64 = 20140705;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { QUICK } else { FULL };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    match what.as_str() {
        "all" => {
            for name in [
                "table1", "table2", "table3", "fig7", "fig10", "fig12", "fig14", "fig17",
                "fig18", "fig19", "exp76", "exp77", "ablation",
            ] {
                run(name, &scale);
            }
        }
        name => run(name, &scale),
    }
}

fn header(name: &str, paper: &str) {
    println!("\n=== {name} — {paper} ===");
}

fn run(name: &str, s: &Scale) {
    match name {
        "table1" => {
            header("table1", "Replayed behaviours and latency anchors");
            repro::tables::print_table1();
        }
        "table2" => {
            header("table2", "Experiment goals");
            repro::tables::print_table2();
        }
        "table3" | "fig6" => {
            header(name, "Tool accuracy and overhead (§7.1)");
            let (bars, overhead) = repro::exp71::run(s.accuracy_reps, SEED);
            for b in &bars {
                println!("{b}");
            }
            println!("{overhead}");
        }
        "fig7" | "fig8" => {
            header(name, "Post uploading breakdown (§7.2)");
            let (fig7, fig8) = repro::exp72::run(s.post_reps, SEED);
            println!("-- Fig 7: device vs network delay --");
            for r in &fig7 {
                println!("{r}");
            }
            println!("-- Fig 8: fine-grained network latency (2 photos) --");
            for r in &fig8 {
                println!("{r}");
            }
        }
        "fig10" | "fig11" => {
            header(name, "Background data/energy vs post frequency (§7.3)");
            for r in repro::exp73::run_fig10_11(SEED) {
                println!("{r}");
            }
        }
        "fig12" | "fig13" => {
            header(name, "Background data/energy vs refresh interval (§7.3)");
            for r in repro::exp73::run_fig12_13(SEED) {
                println!("{r}");
            }
        }
        "fig14" | "fig15" | "fig16" => {
            header(name, "WebView vs ListView news feed updates (§7.4)");
            for r in repro::exp74::run(s.updates, SEED) {
                println!("{r}");
                let cdf = r.cdf();
                println!(
                    "         cdf: {}  {}",
                    repro::render::cdf_strip(&cdf, 1e3, "ms"),
                    repro::render::sparkline(&cdf.values)
                );
            }
        }
        "fig17" => {
            header(name, "Throttled vs unthrottled video QoE (§7.5)");
            for r in repro::exp75::run_fig17(s.videos, SEED) {
                println!("{r}");
                println!(
                    "         loading cdf: {}",
                    repro::render::cdf_strip(&r.loading_cdf(), 1.0, "s")
                );
            }
        }
        "fig18" => {
            header(name, "Shaping vs policing throughput signature (§7.5)");
            let traces = repro::exp75::run_fig18(SEED);
            let hi = traces
                .iter()
                .flat_map(|t| t.series.iter().cloned())
                .fold(0.0f64, f64::max);
            for r in traces {
                println!("{r}");
                let ds = repro::render::downsample(&r.series, 64);
                println!("         {}", repro::render::sparkline_in(&ds, 0.0, hi));
            }
        }
        "fig19" | "fig20" => {
            header(name, "QoE vs throttled bandwidth sweep (§7.5)");
            for r in repro::exp75::run_sweep(s.sweep_videos, SEED) {
                println!("{r}");
            }
        }
        "exp76" => {
            header(name, "Video ads and loading time (§7.6)");
            for r in repro::exp76::run(s.ad_reps, SEED) {
                println!("{r}");
            }
        }
        "ablation" => {
            header(name, "Ablations: mapper mechanisms, calibration, throttle discipline");
            println!("-- long-jump mapper resync mechanisms --");
            for r in repro::ablation::mapper_ablation(s.post_reps.min(8), SEED) {
                println!("{r}");
            }
            println!("-- §5.1 calibration --");
            println!("{}", repro::ablation::calibration_ablation(s.accuracy_reps, SEED));
            println!("-- token-bucket discipline at 128 kb/s on LTE --");
            for r in repro::ablation::discipline_ablation(128e3, SEED) {
                println!("{r}");
            }
        }
        "exp77" => {
            header(name, "RRC state machine design and page loads (§7.7)");
            let rows = repro::exp77::run(s.page_reps, SEED);
            for r in &rows {
                println!("{r}");
            }
            println!(
                "3G simplification reduces page load time by {:.1}% (paper: 22.8%)",
                repro::exp77::reduction_percent(&rows)
            );
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}
