//! Terminal rendering helpers: sparklines for time series and bar strips
//! for CDFs, so `repro` output reads like the paper's figures.

/// Render `values` as a unicode sparkline, auto-scaled to its own range.
pub fn sparkline(values: &[f64]) -> String {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    sparkline_in(values, lo, hi)
}

/// Render `values` as a unicode sparkline against an explicit `[lo, hi]`
/// range — use one range across several series to make them comparable.
pub fn sparkline_in(values: &[f64], lo: f64, hi: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|v| {
            let idx =
                (((v - lo) / span).clamp(0.0, 1.0) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Downsample `values` to at most `width` points by bucket-averaging.
pub fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width || width == 0 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(width);
    let chunk = values.len() as f64 / width as f64;
    for i in 0..width {
        let lo = (i as f64 * chunk) as usize;
        let hi = (((i + 1) as f64 * chunk) as usize)
            .min(values.len())
            .max(lo + 1);
        let slice = &values[lo..hi];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    out
}

/// Render a CDF as quantile markers over a fixed-width strip, e.g.
/// `p10 ▏534  p50 ▍609  p90 ▉721 (ms)`.
pub fn cdf_strip(cdf: &simcore::Cdf, unit_scale: f64, unit: &str) -> String {
    if cdf.values.is_empty() {
        return "(empty)".into();
    }
    let qs = [0.10, 0.25, 0.50, 0.75, 0.90];
    let parts: Vec<String> = qs
        .iter()
        .map(|q| {
            format!(
                "p{:.0}={:.0}{}",
                q * 100.0,
                cdf.quantile(*q) * unit_scale,
                unit
            )
        })
        .collect();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Cdf;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_handles_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
    }

    #[test]
    fn shared_scale_makes_series_comparable() {
        let small = sparkline_in(&[0.5, 0.5], 0.0, 1.0);
        let big = sparkline_in(&[1.0, 1.0], 0.0, 1.0);
        assert!(small.chars().all(|c| c == '▄' || c == '▅'), "{small}");
        assert!(big.chars().all(|c| c == '█'), "{big}");
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = downsample(&values, 10);
        assert_eq!(ds.len(), 10);
        let mean_orig = values.iter().sum::<f64>() / values.len() as f64;
        let mean_ds = ds.iter().sum::<f64>() / ds.len() as f64;
        assert!((mean_orig - mean_ds).abs() < 1.0);
        // Short inputs pass through.
        assert_eq!(downsample(&values[..5], 10), values[..5].to_vec());
    }

    #[test]
    fn cdf_strip_formats_quantiles() {
        let c = Cdf::of(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let s = cdf_strip(&c, 1e3, "ms");
        assert!(s.contains("p50=300ms"), "{s}");
        assert!(s.contains("p90="), "{s}");
    }
}
