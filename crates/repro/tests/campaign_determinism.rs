//! The harness's core guarantee, exercised end-to-end through a real
//! experiment: a campaign's result sequence is identical whatever the
//! worker count, and a panicking job degrades to a failed-job record
//! instead of killing the campaign.

use harness::{report_json, Campaign, Outcome, Record};

const SEED: u64 = 20140705;

/// Everything deterministic about a finished job: identity, the stdout row,
/// and the structured JSON payload. Wall-clock is deliberately excluded —
/// it is the one nondeterministic field of the run journal.
fn fingerprint<T: Record>(run: &harness::CampaignRun<T>) -> Vec<(String, u64, String, String)> {
    run.jobs
        .iter()
        .map(|j| {
            let row = match &j.outcome {
                Outcome::Ok(r) => format!("ok:{}\n{}", r.row(), r.to_json().pretty()),
                Outcome::Retried { row, attempts } => {
                    format!(
                        "retried[{attempts}]:{}\n{}",
                        row.row(),
                        row.to_json().pretty()
                    )
                }
                Outcome::Faulted { reason, attempts } => {
                    format!("faulted[{attempts}]:{reason}")
                }
                Outcome::Panicked(msg) => format!("panicked:{msg}"),
            };
            (j.label.clone(), j.seed, format!("{:?}", j.sim_secs), row)
        })
        .collect()
}

#[test]
fn fig17_campaign_is_identical_for_1_and_4_workers() {
    let a = repro::exp75::campaign_fig17(2, SEED).run(1);
    let b = repro::exp75::campaign_fig17(2, SEED).run(4);
    assert_eq!(a.workers, 1);
    assert!(b.workers > 1);
    assert_eq!(fingerprint(&a), fingerprint(&b));

    // The full report bodies also match once the wall-clock fields are
    // stripped (they are the only lines that may differ).
    let strip = |run: &harness::CampaignRun<_>| {
        report_json(run)
            .pretty()
            .lines()
            .filter(|l| !l.contains("wall_ms") && !l.contains("\"workers\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn background_campaign_is_identical_for_1_and_4_workers() {
    // 1-hour quick variant of the §7.3 sweep: exercises timed_job and the
    // scaled-duration path `--quick` uses.
    let a = repro::exp73::campaign_fig10_11(1, SEED).run(1);
    let b = repro::exp73::campaign_fig10_11(1, SEED).run(4);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.jobs.iter().all(|j| j.sim_secs == Some(3600.0)));
}

#[test]
fn panicking_job_fails_alone() {
    // Silence the default panic hook for the deliberate panic below.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut c: Campaign<repro::exp75::WatchRun> = Campaign::new("fig17_with_failure");
    c.job("ok/before", SEED, move || {
        repro::exp75::run_watch(repro::NetKind::Lte, 1, SEED)
    });
    c.job("boom", SEED ^ 1, || panic!("injected failure"));
    c.job("ok/after", SEED ^ 2, move || {
        repro::exp75::run_watch(repro::NetKind::Umts3g, 1, SEED ^ 2)
    });
    let run = c.run(4);
    std::panic::set_hook(prev);

    assert_eq!(run.jobs.len(), 3);
    assert_eq!(run.failed(), 1);
    assert!(run.jobs[0].outcome.is_ok());
    assert!(
        matches!(&run.jobs[1].outcome, Outcome::Panicked(msg) if msg.contains("injected failure"))
    );
    assert!(run.jobs[2].outcome.is_ok());

    // The report records the failure as data, not as an abort.
    let doc = report_json(&run).pretty();
    assert!(doc.contains("\"jobs_failed\": 1"));
    assert!(doc.contains("\"panic\": \"injected failure\""));
}
