//! End-to-end record/analyze equivalence on a real experiment.
//!
//! The harness unit tests prove the staged machinery on synthetic jobs;
//! these tests prove it on an actual reproduction campaign (§7.7 at
//! minimal scale): analyzing recorded bundles must yield row-for-row the
//! same output as the fused inline pipeline at any worker count, and a
//! warm content-addressed cache must serve every job without simulating.

use std::fs;
use std::path::PathBuf;

use harness::{Record, StageMode};

const SEED: u64 = 20140705;
const REPS: usize = 1;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-rec-an-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn rows(mode: &StageMode, workers: usize) -> (Vec<String>, harness::StageStats) {
    let run = repro::exp77::staged(REPS, SEED)
        .into_campaign(mode)
        .run(workers);
    assert_eq!(run.failed() + run.faulted(), 0, "no job may fail");
    let stats = run.stages.expect("staged campaign reports stats");
    (run.into_outputs().iter().map(|r| r.row()).collect(), stats)
}

#[test]
fn analyze_from_disk_matches_inline_at_any_worker_count() {
    let root = tmp("analyze");
    let rec = repro::exp77::staged(REPS, SEED)
        .into_record_campaign(&root)
        .run(2);
    assert_eq!(rec.failed() + rec.faulted(), 0, "recording must succeed");
    assert_eq!(rec.stages.expect("stats").mode, "record");

    let (inline_rows, inline_stats) = rows(&StageMode::Inline, 1);
    assert_eq!(inline_stats.simulated, inline_rows.len());
    for workers in [1, 2] {
        let (offline_rows, stats) = rows(&StageMode::Analyze(root.clone()), workers);
        assert_eq!(stats.simulated, 0, "analyze mode must never simulate");
        assert_eq!(stats.cache_hits, inline_rows.len());
        assert_eq!(offline_rows, inline_rows, "workers={workers}");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn warm_cache_skips_simulation_with_identical_rows() {
    let root = tmp("cache");
    let (cold_rows, cold) = rows(&StageMode::Cached(root.clone()), 2);
    assert_eq!(cold.simulated, cold_rows.len());
    assert_eq!(cold.cache_misses, cold_rows.len());

    let (warm_rows, warm) = rows(&StageMode::Cached(root.clone()), 2);
    assert_eq!(warm.simulated, 0, "warm cache must not simulate");
    assert_eq!(warm.cache_hits, cold_rows.len());
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm_rows, cold_rows);
    let _ = fs::remove_dir_all(&root);
}
