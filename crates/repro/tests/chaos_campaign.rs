//! The chaos campaign's two robustness guarantees, end-to-end: a fixed-seed
//! run is byte-identical whatever the worker count, and a crash-looping app
//! exhausts its retry budget into a `faulted` record while every other cell
//! of the same campaign completes normally.
//!
//! Uses a reduced grid (one healthy video cell, one recoverable crash, the
//! crash loop, one page fault) so the test stays fast; the full grid runs
//! under `repro chaos`.

use faults::{FaultKind, FaultLayer, FaultPlan, Window};
use harness::{report_json, Campaign, Outcome, Record};
use repro::chaos::{page_cell, video_cell, ChaosRow};
use repro::NetKind;
use simcore::{SimDuration, SimTime};

const SEED: u64 = 20140705;

/// Everything deterministic about a finished job (wall-clock excluded).
fn fingerprint(run: &harness::CampaignRun<ChaosRow>) -> Vec<(String, u64, String, String)> {
    run.jobs
        .iter()
        .map(|j| {
            let row = match &j.outcome {
                Outcome::Ok(r) => format!("ok:{}\n{}", r.row(), r.to_json().pretty()),
                Outcome::Retried { row, attempts } => {
                    format!(
                        "retried[{attempts}]:{}\n{}",
                        row.row(),
                        row.to_json().pretty()
                    )
                }
                Outcome::Faulted { reason, attempts } => {
                    format!("faulted[{attempts}]:{reason}")
                }
                Outcome::Panicked(msg) => format!("panicked:{msg}"),
            };
            (j.label.clone(), j.seed, format!("{:?}", j.sim_secs), row)
        })
        .collect()
}

/// A four-cell slice of the chaos grid, including the crash loop.
fn small_campaign(seed: u64) -> Campaign<ChaosRow> {
    let mut c = Campaign::new("chaos_small");
    c.sim_cap(SimDuration::from_secs(3_600));
    let net = NetKind::LteThrottled(900e3);

    let baseline = FaultPlan::new();
    c.fallible_job("video/baseline", seed, 1, move |_| {
        video_cell("baseline".into(), None, &baseline, net, seed)
    });

    // One crash mid-loading: the controller's re-search + re-click recovers.
    let crash = FaultPlan::new().with_kind(FaultKind::AppCrash {
        at: SimTime::from_secs(17),
        relaunch: SimDuration::from_millis(2_500),
    });
    c.fallible_job("video/app_crash", seed, 1, move |_| {
        video_cell(
            "app_crash".into(),
            Some(FaultLayer::Device),
            &crash,
            net,
            seed,
        )
    });

    // Crash every 5 s: loading (~7 s on the throttled link) never fits in
    // the ~3.5 s of uptime, so every attempt fails and the harness faults
    // the cell after two tries.
    let mut loop_plan = FaultPlan::new();
    for at in (16..1_200).step_by(5) {
        loop_plan = loop_plan.with_kind(FaultKind::AppCrash {
            at: SimTime::from_secs(at),
            relaunch: SimDuration::from_millis(1_500),
        });
    }
    c.fallible_job("video/crash_loop", seed, 2, move |_| {
        video_cell(
            "crash_loop".into(),
            Some(FaultLayer::Device),
            &loop_plan,
            net,
            seed,
        )
    });

    let dns = FaultPlan::new().with_kind(FaultKind::DnsOutage {
        window: Window::span_secs(2, 14),
    });
    c.job("page/dns_outage", seed, move || {
        page_cell("dns_outage".into(), Some(FaultLayer::Network), &dns, seed)
    });
    c
}

#[test]
fn chaos_campaign_is_identical_for_1_and_4_workers() {
    let a = small_campaign(SEED).run(1);
    let b = small_campaign(SEED).run(4);
    assert_eq!(a.workers, 1);
    assert!(b.workers > 1);
    assert_eq!(fingerprint(&a), fingerprint(&b));

    // Full report bodies match once the wall-clock fields are stripped.
    let strip = |run: &harness::CampaignRun<ChaosRow>| {
        report_json(run)
            .pretty()
            .lines()
            .filter(|l| !l.contains("wall_ms") && !l.contains("\"workers\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b));

    // The crash loop lands as a faulted record — budget exhausted, reason
    // preserved — while the other three cells complete.
    assert_eq!(a.jobs.len(), 4);
    assert_eq!(a.faulted(), 1);
    assert_eq!(a.failed(), 0);
    assert!(matches!(
        &a.jobs[2].outcome,
        Outcome::Faulted { reason, attempts: 2 } if reason.contains("no measurement")
    ));
    assert!(a.jobs[0].outcome.is_ok());
    assert!(a.jobs[1].outcome.is_ok());
    assert!(a.jobs[3].outcome.is_ok());

    // The recovered crash cell shows the resilience machinery in its row:
    // a second controller attempt after one observed crash.
    let crash_row = a.jobs[1].outcome.ok().expect("app_crash cell completed");
    assert_eq!(crash_row.crashes, 1);
    assert!(crash_row.attempts > 1);
    assert_eq!(crash_row.attributed, "device");
}
