//! End-to-end monitoring guarantees on a reduced real-simulation grid: the
//! injected RRC-timer regression is detected at the right epoch and
//! attributed to the radio layer, its control twin stays clean, rows are
//! byte-identical at any worker count, and a cached run's bundles commit
//! to the longitudinal epoch store (idempotently).
//!
//! Uses only the page cells — the cheapest pair — so the test stays fast;
//! the full six-cell grid runs under `repro monitor` (see the CI
//! monitor-smoke job).

use harness::StageMode;
use repro::monitor::{commit_history, report, spec};
use std::path::PathBuf;

const SEED: u64 = 20140705;
const EPOCHS: usize = 6;

/// The full grid, reduced to the 3G page cells (regression + control).
fn page_spec() -> monitor::MonitorSpec<qoe_doctor::Collection> {
    let mut s = spec(EPOCHS, SEED);
    s.cells.retain(|c| c.cell.starts_with("page/"));
    assert_eq!(s.cells.len(), 2);
    s
}

#[test]
fn rrc_timer_regression_is_detected_and_attributed() {
    let rows = page_spec()
        .build()
        .into_campaign(&StageMode::Inline)
        .run(2)
        .into_outputs();
    assert_eq!(rows.len(), 2 * EPOCHS);

    let rendered = report(rows);
    // The drift cell regresses at the midpoint, on the radio layer.
    let detection = rendered
        .lines()
        .find(|l| l.starts_with("REGRESSION page/rrc-timers/3G"))
        .expect("rrc-timer regression detected");
    assert!(
        detection.contains("first bad epoch 3"),
        "wrong change point: {detection}"
    );
    assert!(
        detection.contains("layer radio"),
        "wrong layer: {detection}"
    );
    // The control twin stays clean.
    assert!(
        rendered.contains("ok         page/control/3G"),
        "control flagged: {rendered}"
    );
    assert!(
        rendered.contains("1/1 injected regressions detected and attributed on-layer"),
        "{rendered}"
    );
    assert!(
        rendered.contains("0 false positive(s) on 1 control cells"),
        "{rendered}"
    );
}

#[test]
fn rows_are_identical_for_1_and_4_workers() {
    let a = page_spec()
        .build()
        .into_campaign(&StageMode::Inline)
        .run(1)
        .into_outputs();
    let b = page_spec()
        .build()
        .into_campaign(&StageMode::Inline)
        .run(4)
        .into_outputs();
    assert_eq!(a, b);
    assert_eq!(report(a), report(b));
}

#[test]
fn cached_run_commits_to_the_epoch_store_idempotently() {
    let root: PathBuf =
        std::env::temp_dir().join(format!("repro-monitor-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let s = page_spec();
    let run = s
        .build()
        .into_campaign(&StageMode::Cached(root.clone()))
        .run(2);
    assert_eq!(run.faulted() + run.failed(), 0);

    // First commit indexes every cell×epoch bundle; a re-commit of the
    // same history appends nothing.
    assert_eq!(commit_history(&s, &root).unwrap(), 2 * EPOCHS);
    assert_eq!(commit_history(&s, &root).unwrap(), 0);

    // The store round-trips a recorded epoch back into an analyzable
    // Collection whose metrics match the live run.
    let store = monitor::EpochStore::open(&root).unwrap();
    let entries = store.entries("page/rrc-timers/3G").unwrap();
    assert_eq!(entries.len(), EPOCHS);
    let col: qoe_doctor::Collection = store.load_epoch("page/rrc-timers/3G", &entries[0]).unwrap();
    assert!(col.behavior.iter().any(|(_, r)| r.action == "page_load"));

    let _ = std::fs::remove_dir_all(&root);
}
