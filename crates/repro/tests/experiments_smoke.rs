//! Smoke tests for every experiment module at minimal scale: each one must
//! run to completion and reproduce its headline *direction* (who wins), if
//! not the full magnitude. These guard the calibrated shape targets of
//! DESIGN.md against regressions.

use repro::exp72::PostKind;
use repro::NetKind;

#[test]
fn exp72_photos_slower_than_status_and_3g_slower_than_lte() {
    let status = repro::exp72::run_posts(PostKind::Status, NetKind::Lte, 2, 1);
    let photos_lte = repro::exp72::run_posts(PostKind::Photos, NetKind::Lte, 2, 2);
    let photos_3g = repro::exp72::run_posts(PostKind::Photos, NetKind::Umts3g, 2, 3);
    let mean = |col: &qoe_doctor::Collection, action: &str| {
        qoe_doctor::analyze::app::latency_summary(&col.behavior, action).mean
    };
    let s = mean(&status, "upload_post:status");
    let pl = mean(&photos_lte, "upload_post:photos");
    let p3 = mean(&photos_3g, "upload_post:photos");
    assert!(s > 0.3 && s < 2.0, "status {s}");
    assert!(pl > 2.0, "photos lte {pl}");
    assert!(p3 > pl, "3g {p3} vs lte {pl}");
}

#[test]
fn exp72_fig8_rlc_dominates_3g() {
    let col = repro::exp72::run_posts(PostKind::Photos, NetKind::Umts3g, 2, 4);
    let row = repro::exp72::photo_net_breakdown(&col, "3G").expect("breakdown");
    assert!(row.rlc_tx > row.ip_to_rlc, "{row}");
    assert!(row.rlc_tx > row.ota, "{row}");
    assert!(row.ul_pdus_per_post > 5_000.0, "{row}");
}

#[test]
fn exp73_background_data_scales_with_push_frequency() {
    let fast = repro::exp73::run_config(
        "fast",
        Some(simcore::SimDuration::from_mins(10)),
        Some(simcore::SimDuration::from_hours(1)),
        repro::exp73::RUN_HOURS,
        5,
    );
    let none = repro::exp73::run_config(
        "none",
        None,
        Some(simcore::SimDuration::from_hours(1)),
        repro::exp73::RUN_HOURS,
        5,
    );
    assert!(fast.total_kb() > 2.0 * none.total_kb(), "{fast} vs {none}");
    assert!(fast.total_j() > none.total_j());
    assert!(
        none.total_kb() > 50.0,
        "baseline refresh traffic exists: {none}"
    );
}

#[test]
fn exp74_webview_updates_slower_and_heavier() {
    use device::apps::FbVersion;
    let lv = repro::exp74::run_config(FbVersion::ListView50, NetKind::Lte, 3, 6);
    let wv = repro::exp74::run_config(FbVersion::WebView18, NetKind::Lte, 3, 7);
    assert!(!lv.latencies.is_empty() && !wv.latencies.is_empty());
    assert!(
        wv.cdf().quantile(0.5) > 2.0 * lv.cdf().quantile(0.5),
        "{wv} vs {lv}"
    );
    assert!(wv.dl_bytes > 3.0 * lv.dl_bytes, "{wv} vs {lv}");
}

#[test]
fn exp75_throttling_degrades_qoe() {
    let free = repro::exp75::run_watch(NetKind::Lte, 2, 8);
    let throttled = repro::exp75::run_watch(NetKind::LteThrottled(128e3), 1, 8);
    let free_rebuf: f64 =
        free.videos.iter().map(|v| v.rebuffering).sum::<f64>() / free.videos.len() as f64;
    let thr_rebuf: f64 =
        throttled.videos.iter().map(|v| v.rebuffering).sum::<f64>() / throttled.videos.len() as f64;
    assert!(free_rebuf < 0.05, "unthrottled rebuffer {free_rebuf}");
    assert!(thr_rebuf > 0.3, "throttled rebuffer {thr_rebuf}");
    assert!(
        throttled.videos[0].initial_loading > 4.0 * free.videos[0].initial_loading,
        "{} vs {}",
        throttled.videos[0].initial_loading,
        free.videos[0].initial_loading
    );
}

#[test]
fn exp75_fig18_shaping_smoother_than_policing() {
    let traces = repro::exp75::run_fig18(9);
    let shaped = &traces[0];
    let policed = &traces[1];
    assert!(shaped.label.contains("shaped"));
    assert!(policed.label.contains("policed"));
    // Shaping: higher, steadier plateau; policing: more retransmissions.
    assert!(shaped.mean_bps > policed.mean_bps, "{shaped} vs {policed}");
    assert!(
        shaped.std_bps / shaped.mean_bps < policed.std_bps / policed.mean_bps,
        "coefficient of variation: {shaped} vs {policed}"
    );
    assert!(
        policed.retransmissions > shaped.retransmissions,
        "{shaped} vs {policed}"
    );
}

#[test]
fn exp76_ads_double_total_loading_on_3g_when_watched() {
    let no_ad = repro::exp76::run_config(NetKind::Umts3g, false, false, 2, 10);
    let watched = repro::exp76::run_config(NetKind::Umts3g, true, false, 2, 10);
    let skipped = repro::exp76::run_config(NetKind::Umts3g, true, true, 2, 10);
    assert!(
        watched.total_loading.mean > 1.5 * no_ad.total_loading.mean,
        "watched {} vs no-ad {}",
        watched.total_loading.mean,
        no_ad.total_loading.mean
    );
    // Skipping keeps the radio warm: the main video loads faster than
    // standalone.
    assert!(
        skipped.main_loading.mean < 0.7 * no_ad.main_loading.mean,
        "skipped main {} vs standalone {}",
        skipped.main_loading.mean,
        no_ad.main_loading.mean
    );
}

#[test]
fn exp77_simplified_machine_reduces_page_loads_15_to_30_percent() {
    let rows = repro::exp77::run(4, 11);
    let reduction = repro::exp77::reduction_percent(&rows);
    assert!(
        (15.0..=30.0).contains(&reduction),
        "reduction {reduction}% (paper: 22.8%)"
    );
    // LTE is fastest everywhere.
    for browser in ["chrome", "firefox", "internet"] {
        let lte = rows
            .iter()
            .find(|r| r.browser == browser && r.net == "LTE")
            .unwrap()
            .loads
            .mean;
        let g3 = rows
            .iter()
            .find(|r| r.browser == browser && r.net == "3G")
            .unwrap()
            .loads
            .mean;
        assert!(lte < g3, "{browser}: lte {lte} vs 3g {g3}");
    }
}

#[test]
fn ablation_gap_credit_prevents_cascade() {
    let rows = repro::ablation::mapper_ablation(2, 12);
    let full = rows.iter().find(|r| r.config.starts_with("full")).unwrap();
    let no_gap = rows.iter().find(|r| r.config == "no gap credit").unwrap();
    assert!(full.dl.correct_ratio > 0.95, "{full}");
    assert!(no_gap.dl.correct_ratio < 0.5, "{no_gap}");
}

#[test]
fn ablation_calibration_reduces_error() {
    let row = repro::ablation::calibration_ablation(6, 13);
    assert!(row.n >= 4);
    assert!(
        row.calibrated_err_ms < row.raw_err_ms,
        "calibrated {} vs raw {}",
        row.calibrated_err_ms,
        row.raw_err_ms
    );
}

#[test]
fn tables_print_without_panicking() {
    repro::tables::print_table1();
    repro::tables::print_table2();
}
